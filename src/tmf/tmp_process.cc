#include "tmf/tmp_process.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "audit/audit_process.h"
#include "common/logging.h"
#include "discprocess/disc_protocol.h"
#include "os/cluster.h"

namespace encompass::tmf {

namespace {

// Checkpoint entry types.
constexpr uint8_t kCkptTxnUpsert = 1;
constexpr uint8_t kCkptTxnRemove = 2;
constexpr uint8_t kCkptSafeAdd = 3;
constexpr uint8_t kCkptSafeRemove = 4;
constexpr uint8_t kCkptSeq = 5;

}  // namespace

void TmpProcess::OnPairAttach() {
  sim::Stats& stats = this->stats();
  m_.state_broadcasts = stats.RegisterCounter("tmf.state_broadcasts");
  m_.txns_seen = stats.RegisterCounter("tmf.txns_seen");
  m_.auto_aborts = stats.RegisterCounter("tmf.auto_aborts");
  m_.illegal_transitions = stats.RegisterCounter("tmf.illegal_transitions");
  m_.begins = stats.RegisterCounter("tmf.begins");
  m_.ends = stats.RegisterCounter("tmf.ends");
  m_.voluntary_aborts = stats.RegisterCounter("tmf.voluntary_aborts");
  m_.remote_begins = stats.RegisterCounter("tmf.remote_begins");
  m_.phase1_received = stats.RegisterCounter("tmf.phase1_received");
  m_.phase1_sent = stats.RegisterCounter("tmf.phase1_sent");
  m_.audit_forces = stats.RegisterCounter("tmf.audit_forces");
  m_.commits = stats.RegisterCounter("tmf.commits");
  m_.mat_forces = stats.RegisterCounter("tmf.mat_forces");
  m_.mat_group_commit_size = stats.RegisterHistogram("tmf.mat_group_commit_size");
  m_.phase2_received = stats.RegisterCounter("tmf.phase2_received");
  m_.orphan_phase2 = stats.RegisterCounter("tmf.orphan_phase2");
  m_.orphan_aborts = stats.RegisterCounter("tmf.orphan_aborts");
  m_.aborts_started = stats.RegisterCounter("tmf.aborts_started");
  m_.backouts = stats.RegisterCounter("tmf.backouts");
  m_.forced_dispositions = stats.RegisterCounter("tmf.forced_dispositions");
  m_.unilateral_aborts = stats.RegisterCounter("tmf.unilateral_aborts");
  m_.safe_queued = stats.RegisterCounter("tmf.safe_queued");
  m_.safe_delivered = stats.RegisterCounter("tmf.safe_delivered");
  m_.takeover_resumed_commits = stats.RegisterCounter("tmf.takeover_resumed_commits");
  m_.takeover_resumed_aborts = stats.RegisterCounter("tmf.takeover_resumed_aborts");
  m_.resolves_served = stats.RegisterCounter("tmf.resolves_served");
  m_.resolves_sent = stats.RegisterCounter("tmf.resolves_sent");
  m_.indoubt_resolved_commits = stats.RegisterCounter("tmf.indoubt_resolved_commits");
  m_.indoubt_resolved_aborts = stats.RegisterCounter("tmf.indoubt_resolved_aborts");
  m_.indoubt_blocked_on_home = stats.RegisterCounter("tmf.indoubt_blocked_on_home");
  m_.resolve_malformed_replies = stats.RegisterCounter("tmf.resolve_malformed_replies");
  m_.orphan_lock_commits = stats.RegisterCounter("tmf.orphan_lock_commits");
  m_.orphan_lock_aborts = stats.RegisterCounter("tmf.orphan_lock_aborts");
  m_.paxos_rounds = stats.RegisterCounter("tmf.paxos_rounds");
  m_.paxos_commit_points = stats.RegisterCounter("tmf.paxos_commit_points");
  m_.paxos_adopted_aborts = stats.RegisterCounter("tmf.paxos_adopted_aborts");
  m_.paxos_resolved_commits = stats.RegisterCounter("tmf.paxos_resolved_commits");
  m_.paxos_resolved_aborts = stats.RegisterCounter("tmf.paxos_resolved_aborts");
  m_.paxos_seals = stats.RegisterCounter("tmf.paxos_seals");
  m_.paxos_votes_cast = stats.RegisterCounter("tmf.paxos_votes_cast");
  m_.paxos_fast_commit_points =
      stats.RegisterCounter("tmf.paxos_fast_commit_points");
  m_.paxos_fallbacks = stats.RegisterCounter("tmf.paxos_fallbacks");
  m_.paxos_reclaims_sent = stats.RegisterCounter("tmf.paxos_reclaims_sent");
  m_.indoubt_hold_us = stats.RegisterHistogram("tmf.indoubt_hold_us");
  m_.commit_latency_us = stats.RegisterHistogram("tmf.commit_latency_us");
  for (int from = 0; from < kNumTxnStates; ++from) {
    for (int to = 0; to < kNumTxnStates; ++to) {
      m_.transition[from][to] = stats.RegisterCounter(
          std::string("tmf.transition.") + TxnStateName(static_cast<TxnState>(from)) +
          "->" + TxnStateName(static_cast<TxnState>(to)));
    }
  }
  // Never hand out a transid an earlier incarnation of this node may have
  // used. The durable restart count sets the floor; scanning the surviving
  // MAT for own-home transids additionally covers a fresh respawn that was
  // not accompanied by a restart-count bump (both pair members lost on a
  // live node).
  if (next_seq_ < config_.seq_base) next_seq_ = config_.seq_base;
  if (config_.monitor_trail != nullptr) {
    for (const auto& rec : config_.monitor_trail->records()) {
      if (rec.transid.home_node == node()->id() && rec.transid.seq > next_seq_) {
        next_seq_ = rec.transid.seq;
      }
    }
  }
  ArmIndoubtResolve();
}

std::vector<TxnListEntry> TmpProcess::ListTransactions() const {
  std::vector<TxnListEntry> entries;
  entries.reserve(txns_.size());
  for (const auto& [transid, txn] : txns_) {
    TxnListEntry e;
    e.transid = transid;
    e.state = static_cast<uint8_t>(txn.state);
    e.is_home = txn.is_home;
    e.parent = txn.parent;
    entries.push_back(e);
  }
  return entries;
}

bool TmpProcess::GetTxnState(const Transid& t, TxnState* state) const {
  auto it = txns_.find(t);
  if (it == txns_.end()) return false;
  *state = it->second.state;
  return true;
}

void TmpProcess::OnRequest(const net::Message& msg) {
  if (msg.tag == kTmfPaxosVoteAck) {
    // One-way fast-path vote ack: no reply path, a backup member drops it
    // (the acks re-arrive after a takeover re-runs phase 1).
    if (IsPrimary()) HandlePaxosVoteAck(msg);
    return;
  }
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup tmp"));
    return;
  }
  switch (msg.tag) {
    case kTmfBegin: HandleBegin(msg); break;
    case kTmfEnd: HandleEnd(msg); break;
    case kTmfAbort: HandleAbort(msg); break;
    case kTmfEnsureRemote: HandleEnsureRemote(msg); break;
    case kTmfRemoteBegin: HandleRemoteBegin(msg); break;
    case kTmfPhase1: HandlePhase1(msg); break;
    case kTmfPhase2: HandlePhase2(msg); break;
    case kTmfAbortTxn: HandleAbortTxn(msg); break;
    case kTmfStatus: HandleStatus(msg); break;
    case kTmfForceDisposition: HandleForceDisposition(msg); break;
    case kTmfResolveTxn: HandleResolveTxn(msg); break;
    case kTmfListTxns:
      Reply(msg, Status::Ok(), EncodeTxnList(ListTransactions()));
      break;
    default:
      Reply(msg, Status::InvalidArgument("unknown tmf tag"));
  }
}

// ---------------------------------------------------------------------------
// Transaction table and state machine
// ---------------------------------------------------------------------------

TmpProcess::TxnEntry* TmpProcess::FindTxn(const Transid& t) {
  auto it = txns_.find(t);
  return it == txns_.end() ? nullptr : &it->second;
}

TmpProcess::TxnEntry* TmpProcess::CreateTxn(const Transid& t, bool is_home,
                                            net::NodeId parent) {
  TxnEntry entry;
  entry.transid = t;
  entry.state = TxnState::kActive;
  entry.is_home = is_home;
  entry.parent = parent;
  auto [it, inserted] = txns_.emplace(t, std::move(entry));
  (void)inserted;
  // BEGIN (or remote begin) broadcasts the transid in "active" state to all
  // processors of this node.
  stats().Incr(m_.state_broadcasts, node()->AliveCpuCount());
  stats().Incr(m_.txns_seen);
  CheckpointTxn(it->second, /*removed=*/false);
  ArmAutoAbort(t);
  return &it->second;
}

void TmpProcess::ArmAutoAbort(const Transid& t) {
  if (config_.auto_abort_timeout <= 0) return;
  SetTimer(config_.auto_abort_timeout, [this, t]() {
    TxnEntry* txn = FindTxn(t);
    if (txn == nullptr) return;
    // Still "active" after the whole timeout: the requester is gone (e.g.
    // its CPU failed and the abort request was lost in the takeover
    // window). Abort so the locks release. In-doubt transactions (ending,
    // non-home) are never touched — they wait for the home's disposition.
    if (txn->state == TxnState::kActive) {
      stats().Incr(m_.auto_aborts);
      StartAbort(t, "transaction abandoned (auto-abort timeout)");
    } else if (txn->state == TxnState::kEnding && txn->is_home) {
      // A home transaction stuck in ending means the phase-1 continuation
      // was lost (e.g. TMP takeover races); re-arm and let takeover logic
      // resolve it. Re-check later.
      ArmAutoAbort(t);
    }
  });
}

void TmpProcess::SetState(TxnEntry* txn, TxnState to) {
  if (txn->state == to) return;
  if (!LegalTransition(txn->state, to)) {
    // Counted rather than fatal: benches assert this stays zero.
    stats().Incr(m_.illegal_transitions);
    LOG_ERROR << DebugName() << " illegal transition " << TxnStateName(txn->state)
              << " -> " << TxnStateName(to) << " for " << txn->transid.ToString();
    return;
  }
  stats().Incr(m_.transition[static_cast<int>(txn->state)][static_cast<int>(to)]);
  Trace(sim::TraceEventKind::kTxnState, txn->transid.Pack(),
        static_cast<uint32_t>(txn->state), static_cast<uint32_t>(to));
  const TxnState from = txn->state;
  txn->state = to;
  // Blocked-lock accounting: how long a non-home participant held its locks
  // in-doubt (ending). The bench compares this between 2PC and Paxos Commit.
  // The timestamp is kept unconditionally — ResolveIndoubts uses it to
  // grace-gate acceptor escalation — but the histogram stays knob-gated so
  // default deployments keep byte-identical stats snapshots.
  if (!txn->is_home) {
    if (to == TxnState::kEnding && txn->indoubt_since == 0) {
      txn->indoubt_since = sim()->Now();
    } else if (from == TxnState::kEnding && txn->indoubt_since != 0) {
      if (config_.track_indoubt_hold) {
        stats().Record(m_.indoubt_hold_us,
                       static_cast<int64_t>(sim()->Now() - txn->indoubt_since));
      }
      txn->indoubt_since = 0;
    }
  }
  // Commit latency at the home TMP: END received (kEnding) to commit point
  // (kEnded). Paxos pays its acceptor round trip here; 2PC its MAT force.
  // A kEnding exit to any other state (abort) clears without recording.
  if (config_.track_commit_latency && txn->is_home) {
    if (to == TxnState::kEnding && txn->indoubt_since == 0) {
      txn->indoubt_since = sim()->Now();
    } else if (from == TxnState::kEnding && txn->indoubt_since != 0) {
      if (to == TxnState::kEnded) {
        stats().Record(m_.commit_latency_us,
                       static_cast<int64_t>(sim()->Now() - txn->indoubt_since));
      }
      txn->indoubt_since = 0;
    }
  }
  // State changes are broadcast to every processor within the node,
  // regardless of participation (cheap and reliable over the IPC bus).
  stats().Incr(m_.state_broadcasts, node()->AliveCpuCount());
  CheckpointTxn(*txn, /*removed=*/false);
}

void TmpProcess::DropTxn(const Transid& transid) {
  auto it = txns_.find(transid);
  if (it == txns_.end()) return;
  CheckpointTxn(it->second, /*removed=*/true);
  txns_.erase(it);
}

void TmpProcess::NotifyLocalDiscs(const Transid& t, uint8_t disc_state) {
  discprocess::TxnStateChange change;
  change.transid = t;
  change.state = static_cast<discprocess::DiscTxnState>(disc_state);
  for (const auto& name : config_.disc_processes) {
    // Reliable delivery: a one-way message sent in a takeover window (pair
    // name momentarily unbound) would be lost, leaving the transaction's
    // locks held forever. The retried call re-resolves the name and reaches
    // the new primary.
    os::CallOptions opt;
    opt.timeout = config_.disc_notify_timeout;
    opt.retries = config_.disc_notify_retries;
    Call(net::Address(node()->id(), name), discprocess::kDiscTxnStateChange,
         change.Encode(), [](const Status&, const net::Message&) {}, opt);
  }
}

Disposition TmpProcess::LookupDisposition(const Transid& t) const {
  if (config_.monitor_trail != nullptr) {
    int r = config_.monitor_trail->Lookup(t);
    if (r == 1) return Disposition::kCommitted;
    if (r == 0) return Disposition::kAborted;
  }
  return Disposition::kUnknown;
}

// ---------------------------------------------------------------------------
// Client verbs
// ---------------------------------------------------------------------------

void TmpProcess::HandleBegin(const net::Message& msg) {
  Transid t;
  t.home_node = node()->id();
  os::Process* caller = node()->Find(msg.src.pid);
  t.cpu = static_cast<uint8_t>(
      (msg.src.node == node()->id() && caller != nullptr) ? caller->cpu() : cpu());
  t.seq = ++next_seq_;
  // Mirror the sequence counter so a takeover never reuses a transid.
  Bytes ckpt;
  PutFixed8(&ckpt, kCkptSeq);
  PutFixed64(&ckpt, next_seq_);
  SendCheckpoint(std::move(ckpt));

  CreateTxn(t, /*is_home=*/true, /*parent=*/0);
  stats().Incr(m_.begins);
  Reply(msg, Status::Ok(), EncodeTransidPayload(t));
}

void TmpProcess::HandleEnd(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  TxnEntry* txn = FindTxn(*t);
  if (txn == nullptr) {
    Disposition d = LookupDisposition(*t);
    if (d == Disposition::kCommitted) Reply(msg, Status::Ok());
    else if (d == Disposition::kAborted) Reply(msg, Status::Aborted());
    else Reply(msg, Status::NotFound("unknown transaction"));
    return;
  }
  if (txn->state == TxnState::kAborting || txn->state == TxnState::kAborted) {
    // END-TRANSACTION rejected: the system aborted the transaction.
    Reply(msg, Status::Aborted("transaction aborted by system"));
    return;
  }
  txn->client = msg.src;
  txn->client_req = msg.request_id;
  txn->client_tag = msg.tag;
  CheckpointTxn(*txn, false);
  if (txn->state == TxnState::kEnding) return;  // duplicate END: in progress

  stats().Incr(m_.ends);
  SetState(txn, TxnState::kEnding);
  Transid transid = *t;
  RunPhase1(txn, [this, transid](bool ok) {
    TxnEntry* txn = FindTxn(transid);
    if (txn == nullptr) return;
    if (ok && txn->state == TxnState::kEnding) {
      CompleteCommit(transid);
    } else if (txn->state == TxnState::kEnding) {
      if (FastPathFor(*txn)) {
        // The home's vote may already sit forced at F+1 acceptors: a
        // unilateral abort could contradict a chosen Prepared. Settle the
        // voter instances at a usurping ballot instead.
        StartPaxosFallback(transid);
      } else {
        StartAbort(transid, "phase 1 failed");
      }
    }
  });
}

void TmpProcess::HandleAbort(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  TxnEntry* txn = FindTxn(*t);
  if (txn == nullptr) {
    Reply(msg, LookupDisposition(*t) == Disposition::kAborted
                   ? Status::Ok()
                   : Status::NotFound("unknown transaction"));
    return;
  }
  txn->client = msg.src;
  txn->client_req = msg.request_id;
  txn->client_tag = msg.tag;
  CheckpointTxn(*txn, false);
  stats().Incr(m_.voluntary_aborts);
  StartAbort(*t, "ABORT-TRANSACTION");
}

void TmpProcess::HandleEnsureRemote(const net::Message& msg) {
  Transid t;
  net::NodeId dest;
  if (!DecodeEnsureRemote(Slice(msg.payload), &t, &dest)) {
    Reply(msg, Status::InvalidArgument("bad ensure-remote payload"));
    return;
  }
  TxnEntry* txn = FindTxn(t);
  if (txn == nullptr || txn->state == TxnState::kAborting ||
      txn->state == TxnState::kAborted) {
    Reply(msg, Status::Aborted("transaction not active"));
    return;
  }
  if (dest == node()->id() || txn->children.count(dest)) {
    Reply(msg, Status::Ok());
    return;
  }
  // "Remote transaction begin" is a critical-response message: it must be
  // delivered and acknowledged before any transid transmission to `dest`.
  stats().Incr(m_.remote_begins);
  net::Message request = msg;
  os::CallOptions opt;
  opt.timeout = config_.phase1_timeout;
  Call(Tmp(dest), kTmfRemoteBegin, EncodeTransidPayload(t),
       [this, request, t, dest](const Status& s, const net::Message&) {
         TxnEntry* txn = FindTxn(t);
         if (!s.ok() || txn == nullptr) {
           Reply(request, s.ok() ? Status::Aborted() : s);
           return;
         }
         txn->children.insert(dest);
         CheckpointTxn(*txn, false);
         Reply(request, Status::Ok());
       },
       opt);
}

// ---------------------------------------------------------------------------
// TMP-to-TMP protocol
// ---------------------------------------------------------------------------

void TmpProcess::HandleRemoteBegin(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  if (FindTxn(*t) != nullptr) {
    Reply(msg, Status::Ok());  // idempotent
    return;
  }
  if (LookupDisposition(*t) == Disposition::kAborted) {
    Reply(msg, Status::Aborted("previously aborted at this node"));
    return;
  }
  CreateTxn(*t, /*is_home=*/false, /*parent=*/msg.src.node);
  Reply(msg, Status::Ok());
}

void TmpProcess::HandlePhase1(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  TxnEntry* txn = FindTxn(*t);
  if (txn == nullptr) {
    // No updates here (or already resolved): committed -> affirmative,
    // aborted -> negative (forces network consensus to abort).
    Disposition d = LookupDisposition(*t);
    Reply(msg, d == Disposition::kAborted ? Status::Aborted() : Status::Ok());
    return;
  }
  if (txn->state == TxnState::kAborting || txn->state == TxnState::kAborted) {
    // Unilateral abort happened before phase 1: respond negatively.
    Reply(msg, Status::Aborted("unilaterally aborted"));
    return;
  }
  SetState(txn, TxnState::kEnding);
  stats().Incr(m_.phase1_received);
  // Remember the home's piggybacked ballot (paxos deployments): a recovery
  // proposal for this instance must start at a higher attempt.
  DecodePhase1Ballot(Slice(msg.payload), &txn->home_ballot);
  net::Message request = msg;
  Transid transid = *t;
  RunPhase1(txn, [this, request, transid](bool ok) {
    TxnEntry* txn = FindTxn(transid);
    if (txn == nullptr) {
      Reply(request, Status::Ok());
      return;
    }
    if (!ok) {
      Reply(request, Status::Aborted("subtree phase 1 failed"));
      StartAbort(transid, "phase 1 failed in subtree");
      return;
    }
    // Affirmative reply: from here on this node holds the transaction's
    // locks until the final disposition arrives (in-doubt).
    // Fast path: the affirmative vote also goes straight to the acceptors —
    // this participant's phase-2a message, forced at F+1 acceptors and
    // acked to the home, which is how the commit point skips the home's
    // accept round.
    if (config_.paxos_fast_path &&
        config_.commit_protocol == CommitProtocol::kPaxos &&
        txn->home_ballot != 0) {
      CastVote(txn);
    }
    Reply(request, Status::Ok());
  });
}

void TmpProcess::RunPhase1(TxnEntry* txn, std::function<void(bool)> done) {
  // Phase one: write-force every local audit trail, and transitively ask
  // each child node to do likewise (critical-response).
  const uint64_t packed = txn->transid.Pack();
  Trace(sim::TraceEventKind::kPhase1Start, packed,
        static_cast<uint32_t>(config_.audit_processes.size()),
        static_cast<uint32_t>(txn->children.size()));
  auto traced = [this, packed, done = std::move(done)](bool ok) {
    Trace(sim::TraceEventKind::kPhase1Done, packed, ok ? 1 : 0);
    done(ok);
  };
  auto pending = std::make_shared<int>(0);
  auto failed = std::make_shared<bool>(false);
  auto finish = [pending, failed, done = std::move(traced)]() {
    if (--*pending == 0) done(!*failed);
  };

  *pending = static_cast<int>(config_.audit_processes.size()) +
             static_cast<int>(txn->children.size());
  if (*pending == 0) {
    *pending = 1;
    finish();
    return;
  }
  // Fast path, home side: the home's own prepared-vote leaves the moment
  // its local audit forces complete — it does not wait for the children's
  // phase-1 replies. The children's votes travel to the acceptors
  // concurrently; that overlap is the saved WAN round trip.
  const bool fast_vote = FastPathFor(*txn);
  const Transid transid = txn->transid;
  auto audit_left = std::make_shared<int>(
      static_cast<int>(config_.audit_processes.size()));
  if (fast_vote && *audit_left == 0) CastVote(txn);
  os::CallOptions force_opt;
  force_opt.timeout = config_.force_timeout;
  force_opt.retries = 2;
  for (const auto& name : config_.audit_processes) {
    stats().Incr(m_.audit_forces);
    Trace(sim::TraceEventKind::kAuditForce, packed);
    Call(net::Address(node()->id(), name), audit::kAuditForce, {},
         [this, failed, finish, audit_left, fast_vote, transid](
             const Status& s, const net::Message&) {
           if (!s.ok()) *failed = true;
           if (fast_vote && --*audit_left == 0 && !*failed) {
             TxnEntry* t = FindTxn(transid);
             if (t != nullptr && t->state == TxnState::kEnding) CastVote(t);
           }
           finish();
         },
         force_opt);
  }
  os::CallOptions p1_opt;
  p1_opt.timeout = config_.phase1_timeout;
  // Under Paxos Commit the home's attempt-0 ballot rides the existing
  // phase-1 fan-out (Gray & Lamport's "free" prepare phase); plain 2PC
  // keeps the 8-byte payload so its wire traces stay byte-identical.
  Bytes p1_payload =
      PaxosEnabledFor(*txn)
          ? EncodePhase1Paxos(txn->transid, MakePaxosBallot(0, node()->id()))
          : EncodeTransidPayload(txn->transid);
  for (net::NodeId child : txn->children) {
    stats().Incr(m_.phase1_sent);
    Call(Tmp(child), kTmfPhase1, p1_payload,
         [this, failed, finish, fast_vote, transid, child](
             const Status& s, const net::Message&) {
           if (!s.ok()) {
             *failed = true;
           } else if (fast_vote) {
             // The affirmative reply is the child's prepared-vote — force
             // it into this node's co-located acceptors on its behalf.
             DepositChildVote(transid, child);
           }
           finish();
         },
         p1_opt);
  }
}

void TmpProcess::CompleteCommit(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding) return;
  if (PaxosEnabledFor(*txn)) {
    if (config_.paxos_fast_path) {
      // Fast path: the commit point is the forced-vote ack tally
      // (HandlePaxosVoteAck), which usually fires before phase 1 even
      // finishes. Reaching here with the transaction still ending means
      // some voter's F+1 acks are missing — arm the fallback rounds.
      ArmPaxosFallbackTimer(transid);
      return;
    }
    // Paxos Commit: the commit point is a majority of acceptors durably
    // accepting the decision, not the home MAT force below.
    StartPaxosCommit(transid);
    return;
  }
  // The commit record force on the Monitor Audit Trail is the commit point.
  // Group commit: every transaction whose phase 1 finished before a physical
  // MAT write starts shares that write; a commit deciding while a write is
  // in flight joins the batch for the next one.
  mat_waiting_.push_back(MatWaiter{transid, current_trace()});
  if (mat_write_in_flight_ || mat_gathering_) return;
  ArmMatWrite();
}

void TmpProcess::ArmMatWrite() {
  if (config_.mat_group_commit_window > 0) {
    mat_gathering_ = true;
    SetTimer(config_.mat_group_commit_window, [this]() { StartMatWrite(); });
  } else {
    StartMatWrite();
  }
}

void TmpProcess::StartMatWrite() {
  mat_gathering_ = false;
  if (mat_waiting_.empty()) return;
  mat_write_in_flight_ = true;
  std::vector<MatWaiter> batch = std::move(mat_waiting_);
  mat_waiting_.clear();
  stats().Incr(m_.mat_forces);
  stats().Record(m_.mat_group_commit_size, static_cast<int64_t>(batch.size()));
  SetTimer(config_.mat_force_latency, [this, batch = std::move(batch)]() {
    mat_write_in_flight_ = false;
    for (const MatWaiter& w : batch) {
      WithTraceContext(w.trace,
                       [this, &w]() { CommitPointReached(w.transid); });
    }
    if (!mat_waiting_.empty()) ArmMatWrite();
  });
}

void TmpProcess::CommitPointReached(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding) return;
  if (config_.monitor_trail != nullptr) {
    config_.monitor_trail->AppendForced(
        audit::CompletionRecord{transid, audit::Completion::kCommitted});
  }
  Trace(sim::TraceEventKind::kCommitRecord, transid.Pack());
  SetState(txn, TxnState::kEnded);
  stats().Incr(m_.commits);
  // Phase two: unlock everywhere. Locally via targeted state-change
  // messages; remotely via safe-delivery (inaccessibility of a node does
  // not impede END-TRANSACTION completion on the home node).
  NotifyLocalDiscs(transid,
                   static_cast<uint8_t>(discprocess::DiscTxnState::kEnded));
  // Fast-path GC: once every child has acked its phase-2 delivery no
  // resolver will ever need the voter instances — queue them for
  // reclamation at the acceptors.
  if (config_.paxos_fast_path && PaxosEnabledFor(*txn)) {
    reclaim_waiting_[transid.Pack()] =
        ReclaimEntry{Disposition::kCommitted, ReclaimMaskFor(*txn)};
  }
  for (net::NodeId child : txn->children) {
    QueueSafeDelivery(child, kTmfPhase2, transid);
  }
  ReplyToClient(txn, Status::Ok());
  DropTxn(transid);
}

// ---------------------------------------------------------------------------
// Paxos Commit
// ---------------------------------------------------------------------------

bool TmpProcess::PaxosEnabledFor(const TxnEntry& txn) const {
  // Only distributed transactions have an in-doubt window to shrink;
  // single-node commits keep the home MAT force as their commit point.
  return config_.commit_protocol == CommitProtocol::kPaxos &&
         (!config_.acceptor_nodes.empty() ||
          !config_.acceptor_endpoints.empty()) &&
         txn.is_home && !txn.children.empty();
}

PaxosRoundConfig TmpProcess::PaxosConfig() const {
  PaxosRoundConfig cfg;
  cfg.acceptor_nodes = config_.acceptor_nodes;
  cfg.acceptor_process = config_.acceptor_process;
  cfg.endpoints = config_.acceptor_endpoints;
  cfg.call_timeout = config_.paxos_round_timeout;
  return cfg;
}

void TmpProcess::StartPaxosCommit(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding) return;
  if (txn->paxos_round_in_flight) return;
  txn->paxos_round_in_flight = true;
  stats().Incr(m_.paxos_rounds);
  const uint32_t attempt = txn->paxos_attempt;
  // Attempt 0 skips the prepare phase: the promise rode the phase-1 fan-out
  // and a fresh acceptor entry (promised 0) grants it implicitly. Every
  // later attempt (a retry after being outpaced) prepares properly and
  // adopts whatever value a majority already accepted.
  RunPaxosRound(
      this, PaxosConfig(), transid, attempt, Disposition::kCommitted,
      /*skip_prepare=*/attempt == 0, [this, transid](Disposition chosen) {
        TxnEntry* txn = FindTxn(transid);
        if (txn == nullptr) return;
        txn->paxos_round_in_flight = false;
        if (chosen == Disposition::kCommitted) {
          stats().Incr(m_.paxos_commit_points);
          CommitPointReached(transid);
        } else if (chosen == Disposition::kAborted) {
          // A recovery proposer usurped the instance and fixed abort (it
          // proved the commit point was never reached). Converge.
          stats().Incr(m_.paxos_adopted_aborts);
          StartAbort(transid, "paxos: abort chosen by recovery proposer");
        } else {
          // Majority unreachable or outpaced: escalate the ballot and retry.
          // Until a value is chosen the transaction simply stays ending.
          ++txn->paxos_attempt;
          SetTimer(config_.paxos_retry_interval,
                   [this, transid]() { StartPaxosCommit(transid); });
        }
      });
}

void TmpProcess::MaybePaxosEscalate(const Transid& transid, TxnEntry* txn) {
  if (config_.commit_protocol != CommitProtocol::kPaxos) return;
  // Grace gate: a transaction that entered its in-doubt window less than one
  // resolve interval ago is most likely a healthy commit mid-flight (the
  // home's acceptor round plus phase 2 land within tens of milliseconds).
  // Usurping its ballot with an abort-proposing round would cancel commits
  // that were about to succeed; only transactions that have already waited
  // out a full interval are genuinely stuck.
  if (txn->indoubt_since == 0) {
    // A takeover reconstructed this entry already in kEnding, so the
    // volatile clock was lost. Restart it here rather than leave the entry
    // permanently un-escalatable: it waits out one fresh interval, then
    // the acceptors settle it like any other stuck transaction.
    txn->indoubt_since = sim()->Now();
    return;
  }
  if (sim()->Now() - txn->indoubt_since < config_.indoubt_resolve_interval) {
    return;
  }
  StartPaxosResolve(transid);
}

void TmpProcess::StartPaxosResolve(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding || txn->is_home) return;
  if (txn->paxos_round_in_flight) return;
  if (config_.acceptor_nodes.empty() && config_.acceptor_endpoints.empty()) {
    return;
  }
  txn->paxos_round_in_flight = true;
  // Never re-use the home's initial attempt: a usurping ballot must outrank
  // it so the quorum intersection exposes any accepted value.
  uint32_t floor = (txn->home_ballot >> 16) + 1;
  if (txn->paxos_attempt < floor) txn->paxos_attempt = floor;
  stats().Incr(m_.paxos_rounds);
  auto settle = [this, transid](Disposition chosen) {
    TxnEntry* txn = FindTxn(transid);
    if (txn == nullptr) return;
    txn->paxos_round_in_flight = false;
    if (txn->state != TxnState::kEnding) return;
    if (chosen == Disposition::kCommitted) {
      stats().Incr(m_.paxos_resolved_commits);
      ApplyRemoteCommit(transid, txn);
    } else if (chosen == Disposition::kAborted) {
      stats().Incr(m_.paxos_resolved_aborts);
      StartAbort(transid, "in-doubt resolved by acceptor majority");
    } else {
      ++txn->paxos_attempt;  // retried on the next resolve tick
    }
  };
  if (config_.paxos_fast_path) {
    // Fast path: the outcome is spread over per-voter instances — settle
    // the home's instance first (it names the participants), then theirs.
    ResolvePaxosOutcome(this, PaxosConfig(), transid, txn->paxos_attempt,
                        /*fast_path=*/true, std::move(settle));
    return;
  }
  RunPaxosRound(this, PaxosConfig(), transid, txn->paxos_attempt,
                Disposition::kAborted,
                /*skip_prepare=*/false, std::move(settle));
}

void TmpProcess::SealDecision(const Transid& t) {
  if (config_.commit_protocol != CommitProtocol::kPaxos ||
      (config_.acceptor_nodes.empty() && config_.acceptor_endpoints.empty())) {
    return;
  }
  if (!paxos_sealing_.insert(t).second) return;  // round already in flight
  uint32_t& attempt = paxos_seal_attempt_[t];
  if (attempt == 0) attempt = 1;
  stats().Incr(m_.paxos_rounds);
  auto sealed = [this, t](Disposition chosen) {
    paxos_sealing_.erase(t);
    if (chosen == Disposition::kUnknown) return;  // resealed on next query
    paxos_seal_attempt_.erase(t);
    if (FindTxn(t) != nullptr) return;  // tracked meanwhile: live pipeline
    if (LookupDisposition(t) != Disposition::kUnknown) return;  // recorded
    stats().Incr(m_.paxos_seals);
    if (config_.monitor_trail != nullptr) {
      config_.monitor_trail->AppendForced(audit::CompletionRecord{
          t, chosen == Disposition::kCommitted ? audit::Completion::kCommitted
                                               : audit::Completion::kAborted});
    }
  };
  if (config_.paxos_fast_path) {
    ResolvePaxosOutcome(this, PaxosConfig(), t, attempt++,
                        /*fast_path=*/true, std::move(sealed));
    return;
  }
  RunPaxosRound(this, PaxosConfig(), t, attempt++, Disposition::kAborted,
                /*skip_prepare=*/false, std::move(sealed));
}

// ---------------------------------------------------------------------------
// Paxos Commit fast path
// ---------------------------------------------------------------------------

bool TmpProcess::FastPathFor(const TxnEntry& txn) const {
  return config_.paxos_fast_path && PaxosEnabledFor(txn);
}

std::vector<size_t> TmpProcess::VoteTargetIndices(
    net::NodeId voter, net::NodeId home,
    const std::set<net::NodeId>& prefer) const {
  const auto eps = PaxosConfig().Endpoints();
  const size_t quorum = eps.size() / 2 + 1;  // F+1 of 2F+1
  // Any F+1 subset works for safety (it intersects every resolver's F+1
  // prepare quorum), so pick the cheapest: co-located pairs cost no network
  // message at all, a pair on the home node acks home-locally, and a pair
  // on a participant node gets reclaimed for free when phase 2 lands there.
  auto rank = [&eps, voter, home, &prefer](size_t i) {
    if (eps[i].first == voter) return 0;
    if (eps[i].first == home) return 1;
    if (prefer.count(eps[i].first) != 0) return 2;
    return 3;
  };
  std::vector<size_t> idx(eps.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(),
                   [&rank](size_t a, size_t b) { return rank(a) < rank(b); });
  if (idx.size() > quorum) idx.resize(quorum);
  return idx;
}

uint32_t TmpProcess::ReclaimMaskFor(const TxnEntry& txn) const {
  const auto eps = PaxosConfig().Endpoints();
  const size_t n = eps.size();
  const uint32_t all = n >= 32 ? ~0u : (1u << n) - 1;
  const net::NodeId home = txn.transid.home_node;
  uint32_t mask;
  if (txn.paxos_attempt > 0) {
    // A fallback/resolve round fans its accept phase out to the whole
    // group, so instances may exist anywhere.
    mask = all;
  } else {
    mask = 0;
    static const std::set<net::NodeId> kNone;
    for (size_t i : VoteTargetIndices(home, home, txn.children)) {
      mask |= (1u << i);
    }
    for (net::NodeId child : txn.children) {
      for (size_t i : VoteTargetIndices(child, home, kNone)) mask |= (1u << i);
    }
    mask &= all;
  }
  // Pairs on participant nodes seal themselves the instant phase 2 (or the
  // abort) lands there — ReclaimLocalAcceptors — so the home only flushes
  // to its own pairs (free) and, after a fallback, to bystander nodes.
  for (size_t k = 0; k < n; ++k) {
    if (txn.children.count(eps[k].first) != 0) mask &= ~(1u << k);
  }
  return mask;
}

void TmpProcess::CastVote(TxnEntry* txn) {
  const Transid t = txn->transid;
  // Home: ballot (0, home) — the same implicit promise the legacy path
  // rides on phase 1. Child: the home's piggybacked ballot. Every voter
  // instance thus lives at one known ballot, and any recovery proposal at
  // attempt >= 1 outranks them all.
  const uint32_t ballot =
      txn->is_home ? MakePaxosBallot(0, node()->id()) : txn->home_ballot;
  if (ballot == 0) return;
  std::vector<net::NodeId> participants;
  if (txn->is_home) {
    participants.assign(txn->children.begin(), txn->children.end());
  }
  Bytes vote = EncodePaxosAccept(t, ballot, Disposition::kCommitted,
                                 node()->id(), participants);
  const auto eps = PaxosConfig().Endpoints();
  static const std::set<net::NodeId> kNone;
  const std::set<net::NodeId>& prefer = txn->is_home ? txn->children : kNone;
  // Stamped with the transid so per-transaction message accounting sees the
  // (cross-node) votes even when causal tracing is off.
  set_current_transid(t.Pack());
  for (size_t i : VoteTargetIndices(node()->id(), t.home_node, prefer)) {
    // A child's home-node copies travel as its affirmative phase-1 reply:
    // the home re-materialises the vote locally (DepositChildVote), so a
    // separate cross-node vote message would just be a duplicate.
    if (!txn->is_home && eps[i].first == t.home_node) continue;
    stats().Incr(m_.paxos_votes_cast);
    Send(net::Address(eps[i].first, eps[i].second), kTmfPaxosVote, vote);
  }
  set_current_transid(0);
}

void TmpProcess::DepositChildVote(const Transid& transid, net::NodeId child) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding || !txn->is_home ||
      !FastPathFor(*txn) || config_.colocated_acceptors.empty()) {
    return;
  }
  // The child's vote, bit-for-bit what CastVote would have sent here: same
  // ballot (0, home) it read off phase 1, value Prepared. Written straight
  // into the co-located pairs' durable logs with HandleVote's exact
  // semantics — durable immediately, usurped ballots rejected, tally
  // credit delayed by the forced-write latency. A direct mutation inside
  // an event this TMP already runs: no message hop and no intermediate
  // events, so it cannot perturb event ordering in either engine.
  const uint32_t ballot = MakePaxosBallot(0, node()->id());
  static const std::set<net::NodeId> kNone;
  uint32_t bits = 0;
  for (size_t i : VoteTargetIndices(child, transid.home_node, kNone)) {
    for (const auto& ca : config_.colocated_acceptors) {
      if (ca.index != i) continue;
      if (ca.log->SealedValue(transid.Pack()) != nullptr) continue;
      CommitAcceptorEntry& e = ca.log->At(transid, child);
      if (e.born == 0) e.born = sim()->Now();
      if (e.has_value && e.accepted_ballot == ballot &&
          e.value == Disposition::kCommitted) {
        bits |= (1u << ca.index);  // replay: the first force stands
        continue;
      }
      if (ballot < e.promised) continue;  // usurped by a recovery proposer
      e.promised = ballot > e.promised ? ballot : e.promised;
      e.accepted_ballot = ballot;
      e.has_value = true;
      e.value = Disposition::kCommitted;
      stats().Incr(m_.paxos_votes_cast);
      bits |= (1u << ca.index);
    }
  }
  if (bits == 0) return;
  SetTimer(config_.mat_force_latency, [this, transid, child, bits]() {
    TxnEntry* t = FindTxn(transid);
    if (t == nullptr || t->state != TxnState::kEnding || !t->is_home) return;
    t->vote_acks[child] |= bits;
    CheckVoteTally(t);
  });
}

void TmpProcess::HandlePaxosVoteAck(const net::Message& msg) {
  PaxosVoteAck ack;
  if (!DecodePaxosVoteAck(Slice(msg.payload), &ack)) return;
  TxnEntry* txn = FindTxn(ack.transid);
  if (txn == nullptr || txn->state != TxnState::kEnding || !txn->is_home ||
      !FastPathFor(*txn)) {
    return;  // decided meanwhile (or a stale replay): the ack is moot
  }
  for (uint16_t voter : ack.voters) {
    txn->vote_acks[voter] |= (1u << ack.acceptor_index);
  }
  CheckVoteTally(txn);
}

void TmpProcess::CheckVoteTally(TxnEntry* txn) {
  const size_t acceptors = PaxosConfig().Endpoints().size();
  const size_t needed = acceptors / 2 + 1;
  auto prepared = [&](uint16_t voter) {
    auto it = txn->vote_acks.find(voter);
    if (it == txn->vote_acks.end()) return false;
    uint32_t bits = it->second;
    size_t count = 0;
    while (bits != 0) {
      bits &= bits - 1;
      ++count;
    }
    return count >= needed;
  };
  if (!prepared(node()->id())) return;
  for (net::NodeId child : txn->children) {
    if (!prepared(child)) return;
  }
  // Every voter's Prepared is forced at F+1 acceptors: any future
  // resolver's quorum must reveal each of them, so the outcome is fixed —
  // this tally is the commit point, one WAN delay after END arrived.
  stats().Incr(m_.paxos_commit_points);
  stats().Incr(m_.paxos_fast_commit_points);
  CommitPointReached(txn->transid);
}

void TmpProcess::ArmPaxosFallbackTimer(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding) return;
  if (txn->paxos_fallback_timer != 0) return;
  txn->paxos_fallback_timer =
      SetTimer(config_.paxos_retry_interval, [this, transid]() {
        TxnEntry* txn = FindTxn(transid);
        if (txn == nullptr) return;
        txn->paxos_fallback_timer = 0;
        if (txn->state != TxnState::kEnding) return;
        StartPaxosFallback(transid);
      });
}

void TmpProcess::StartPaxosFallback(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kEnding) return;
  if (txn->paxos_round_in_flight) return;
  txn->paxos_round_in_flight = true;
  if (txn->paxos_attempt == 0) txn->paxos_attempt = 1;
  stats().Incr(m_.paxos_fallbacks);
  stats().Incr(m_.paxos_rounds);
  // Some voter's F+1 acks never materialised (an acceptor died, a vote was
  // lost, a child answered phase 1 negatively). The home may not abort
  // unilaterally — its own Prepared may already be chosen — so it settles
  // every voter instance with abort-proposing rounds at a usurping ballot
  // and adopts whatever they fix.
  ResolvePaxosOutcome(
      this, PaxosConfig(), transid, txn->paxos_attempt, /*fast_path=*/true,
      [this, transid](Disposition chosen) {
        TxnEntry* txn = FindTxn(transid);
        if (txn == nullptr) return;
        txn->paxos_round_in_flight = false;
        if (txn->state != TxnState::kEnding) return;
        if (chosen == Disposition::kCommitted) {
          stats().Incr(m_.paxos_commit_points);
          CommitPointReached(transid);
        } else if (chosen == Disposition::kAborted) {
          stats().Incr(m_.paxos_adopted_aborts);
          StartAbort(transid, "paxos fast path: abort fixed by fallback");
        } else {
          // Exponential backoff: during an outage no amount of re-proposing
          // settles the instances, and each retry costs prepare/accept
          // fan-outs — so double the pause per failed attempt (capped at
          // 2s, roughly the shortest heal window worth waiting for).
          ++txn->paxos_attempt;
          const uint32_t shift = std::min(txn->paxos_attempt, 4u);
          SimDuration delay = config_.paxos_retry_interval << shift;
          if (delay > Seconds(2)) delay = Seconds(2);
          SetTimer(delay, [this, transid]() { StartPaxosFallback(transid); });
        }
      });
}

void TmpProcess::MaybeQueueReclaim(const Transid& transid) {
  auto it = reclaim_waiting_.find(transid.Pack());
  if (it == reclaim_waiting_.end()) return;
  for (const SafeDelivery& d : safe_queue_) {
    if (d.transid == transid) return;  // still draining
  }
  reclaim_pending_.emplace_back(it->first, it->second);
  reclaim_waiting_.erase(it);
  if (reclaim_flush_armed_) return;
  reclaim_flush_armed_ = true;
  SetTimer(config_.paxos_reclaim_interval, [this]() { FlushReclaims(); });
}

void TmpProcess::FlushReclaims() {
  reclaim_flush_armed_ = false;
  if (reclaim_pending_.empty() || !IsPrimary()) return;
  // Targeted one-way flush: each acceptor gets only the transactions whose
  // ReclaimMaskFor() bit names it — an acceptor that no vote (and no
  // fallback accept) ever reached holds no instance, so a reclaim there
  // would be a wasted message. Sent outside any transaction's trace (each
  // batch spans several). An acceptor that misses its flush — down or
  // partitioned — reclaims through its own orphan sweep instead.
  const auto eps = PaxosConfig().Endpoints();
  std::vector<std::vector<std::pair<uint64_t, Disposition>>> batches(
      eps.size());
  for (const auto& [packed, entry] : reclaim_pending_) {
    for (size_t k = 0; k < eps.size(); ++k) {
      if (entry.endpoint_mask & (1u << k)) {
        batches[k].emplace_back(packed, entry.disposition);
      }
    }
  }
  reclaim_pending_.clear();
  WithTraceContext(sim::TraceContext{}, [this, &eps, &batches]() {
    for (size_t k = 0; k < eps.size(); ++k) {
      if (batches[k].empty()) continue;
      stats().Incr(m_.paxos_reclaims_sent);
      Send(net::Address(eps[k].first, eps[k].second), kTmfPaxosReclaim,
           EncodePaxosReclaim(batches[k]));
    }
  });
}

void TmpProcess::ReclaimLocalAcceptors(const Transid& transid, Disposition d) {
  // The disposition just landed on this node, so every co-located pair's
  // instances are sealed in place — a direct mutation of the shared durable
  // log, no message and no event. This is why ReclaimMaskFor() strips
  // participant-node bits from the home's network flush. Empty (every
  // non-fast-path deployment) makes this a no-op.
  for (const auto& ca : config_.colocated_acceptors) {
    ca.log->Seal(transid.Pack(), d);
  }
}

void TmpProcess::HandlePhase2(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  // Safe-delivery semantics: the reply acknowledges receipt only.
  Reply(msg, Status::Ok());
  TxnEntry* txn = FindTxn(*t);
  if (txn == nullptr) {
    if (LookupDisposition(*t) != Disposition::kUnknown) return;  // processed
    // Orphan: the entry was lost (e.g. a TMP takeover raced the
    // remote-begin checkpoint) but local DISCPROCESSes may still hold the
    // transaction's locks. Recreate the entry and run the commit pipeline —
    // every step is idempotent.
    stats().Incr(m_.orphan_phase2);
    txn = CreateTxn(*t, /*is_home=*/false, msg.src.node);
  }
  stats().Incr(m_.phase2_received);
  Trace(sim::TraceEventKind::kPhase2Recv, t->Pack());
  ApplyRemoteCommit(*t, txn);
}

void TmpProcess::ApplyRemoteCommit(const Transid& transid, TxnEntry* txn) {
  if (config_.monitor_trail != nullptr) {
    config_.monitor_trail->AppendForced(
        audit::CompletionRecord{transid, audit::Completion::kCommitted});
  }
  if (!txn->is_home) ReclaimLocalAcceptors(transid, Disposition::kCommitted);
  if (txn->state == TxnState::kActive) SetState(txn, TxnState::kEnding);
  SetState(txn, TxnState::kEnded);
  NotifyLocalDiscs(transid,
                   static_cast<uint8_t>(discprocess::DiscTxnState::kEnded));
  for (net::NodeId child : txn->children) {
    QueueSafeDelivery(child, kTmfPhase2, transid);
  }
  DropTxn(transid);
}

void TmpProcess::HandleAbortTxn(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  Reply(msg, Status::Ok());  // acknowledge receipt
  if (FindTxn(*t) == nullptr) {
    if (LookupDisposition(*t) != Disposition::kUnknown) return;  // processed
    // Orphan (see HandlePhase2): recreate the entry so the abort pipeline
    // releases whatever local state the transaction left behind. The
    // BACKOUTPROCESS finds this node's images in the local audit trails.
    stats().Incr(m_.orphan_aborts);
    CreateTxn(*t, /*is_home=*/false, msg.src.node);
  }
  StartAbort(*t, "abort from parent node");
}

// ---------------------------------------------------------------------------
// Abort and backout
// ---------------------------------------------------------------------------

void TmpProcess::StartAbort(const Transid& transid, const std::string& reason) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr) return;
  if (txn->state == TxnState::kAborting || txn->state == TxnState::kAborted) {
    return;  // already under way
  }
  LOG_DEBUG << DebugName() << " aborting " << transid.ToString() << ": " << reason;
  stats().Incr(m_.aborts_started);
  Trace(sim::TraceEventKind::kAbortStart, transid.Pack());
  // Fast-path GC: an ending home transaction may already have voter
  // instances forced at the acceptors (its own or its children's votes) —
  // reclaim them once the abort safe-deliveries drain. Aborts straight out
  // of kActive never voted, so there is nothing to reclaim.
  if (config_.paxos_fast_path && txn->state == TxnState::kEnding &&
      PaxosEnabledFor(*txn)) {
    reclaim_waiting_[transid.Pack()] =
        ReclaimEntry{Disposition::kAborted, ReclaimMaskFor(*txn)};
  }
  // Participant-side GC: an abort here is either authoritative (the parent
  // or an acceptor majority said so) or pre-vote (this node never voted and,
  // aborting, never will) — both fix the transaction's fate, so co-located
  // acceptors can seal their instances now. Late vote replays bounce off
  // the sealed record.
  if (!txn->is_home) ReclaimLocalAcceptors(transid, Disposition::kAborted);
  SetState(txn, TxnState::kAborting);
  // Locks stay held during backout; DISCPROCESSes reject new work for the
  // transaction. Children learn via safe-delivery.
  NotifyLocalDiscs(transid,
                   static_cast<uint8_t>(discprocess::DiscTxnState::kAborting));
  for (net::NodeId child : txn->children) {
    QueueSafeDelivery(child, kTmfAbortTxn, transid);
  }
  os::CallOptions opt;
  opt.timeout = config_.backout_timeout;
  opt.retries = 2;
  Call(net::Address(node()->id(), config_.backout_process), kBackoutTxn,
       EncodeTransidPayload(transid),
       [this, transid](const Status& s, const net::Message&) {
         if (!s.ok()) {
           LOG_WARN << DebugName() << " backout of " << transid.ToString()
                    << " failed: " << s.ToString();
         }
         FinishAbort(transid);
       },
       opt);
}

void TmpProcess::FinishAbort(const Transid& transid) {
  TxnEntry* txn = FindTxn(transid);
  if (txn == nullptr || txn->state != TxnState::kAborting) return;
  if (config_.monitor_trail != nullptr) {
    config_.monitor_trail->AppendForced(
        audit::CompletionRecord{transid, audit::Completion::kAborted});
  }
  SetState(txn, TxnState::kAborted);
  stats().Incr(m_.backouts);
  Trace(sim::TraceEventKind::kAbortDone, transid.Pack());
  NotifyLocalDiscs(transid,
                   static_cast<uint8_t>(discprocess::DiscTxnState::kAborted));
  // END callers learn their transaction aborted; ABORT callers get success.
  ReplyToClient(txn, txn->client_tag == kTmfAbort
                         ? Status::Ok()
                         : Status::Aborted("transaction backed out"));
  DropTxn(transid);
}

void TmpProcess::ReplyToClient(TxnEntry* txn, const Status& status,
                               Bytes payload) {
  if (txn->client_req == 0) return;
  SendReply(txn->client, txn->client_tag, txn->client_req, status,
            std::move(payload));
  txn->client_req = 0;
}

// ---------------------------------------------------------------------------
// Utilities
// ---------------------------------------------------------------------------

void TmpProcess::HandleStatus(const net::Message& msg) {
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  Disposition d = LookupDisposition(*t);
  Bytes payload;
  PutFixed8(&payload, static_cast<uint8_t>(d));
  Reply(msg, Status::Ok(), payload);
}

void TmpProcess::HandleForceDisposition(const net::Message& msg) {
  Transid t;
  Disposition d;
  if (!DecodeForceDisposition(Slice(msg.payload), &t, &d)) {
    Reply(msg, Status::InvalidArgument("bad force-disposition payload"));
    return;
  }
  TxnEntry* txn = FindTxn(t);
  if (txn == nullptr) {
    Reply(msg, Status::NotFound("transaction not held here"));
    return;
  }
  stats().Incr(m_.forced_dispositions);
  if (d == Disposition::kCommitted) {
    ApplyRemoteCommit(t, txn);
  } else {
    StartAbort(t, "manual override");
  }
  Reply(msg, Status::Ok());
}

void TmpProcess::HandleResolveTxn(const net::Message& msg) {
  Transid t;
  bool recovering;
  if (!DecodeResolveTxn(Slice(msg.payload), &t, &recovering)) {
    Reply(msg, Status::InvalidArgument("bad resolve-txn payload"));
    return;
  }
  stats().Incr(m_.resolves_served);
  // The durable MAT is ground truth wherever the query lands: a recorded
  // completion outlives any crash.
  Disposition d = LookupDisposition(t);
  if (d != Disposition::kUnknown || t.home_node != node()->id()) {
    // Not the home node: we can report our MAT but must not decide.
    Reply(msg, Status::Ok(), EncodeDisposition(d));
    return;
  }
  TxnEntry* txn = FindTxn(t);
  if (txn == nullptr) {
    if (config_.commit_protocol == CommitProtocol::kPaxos &&
        (!config_.acceptor_nodes.empty() ||
         !config_.acceptor_endpoints.empty())) {
      // Under Paxos Commit the absent MAT record proves nothing: the commit
      // point lives at the acceptors, and this TMP may have been respawned
      // after a majority accepted commit but before the home learned it.
      // Seal the instance at the acceptors first (an abort-proposing round
      // that adopts any chosen value); until the MAT holds the sealed
      // outcome the honest answer is unknown.
      SealDecision(t);
      Reply(msg, Status::Ok(), EncodeDisposition(Disposition::kUnknown));
      return;
    }
    // We are the home, there is no durable completion record, and the
    // transaction is not tracked (this TMP may have been respawned fresh
    // after losing both pair members). Commit requires the home's forced
    // MAT record, so its absence proves no commit happened and never will:
    // presumed abort is safe and final.
    Reply(msg, Status::Ok(), EncodeDisposition(Disposition::kAborted));
    return;
  }
  if (!recovering) {
    // Live in-doubt refresh while the transaction is still in flight here:
    // the querier keeps waiting for the normal phase-2/abort delivery.
    Reply(msg, Status::Ok(), EncodeDisposition(Disposition::kUnknown));
    return;
  }
  if (txn->state == TxnState::kEnding && PaxosEnabledFor(*txn)) {
    // The commit point is external now: an accept round may already hold a
    // majority, so the home must not abort unilaterally. Let the in-flight
    // round (or the recoverer's own acceptor query) settle the outcome.
    Reply(msg, Status::Ok(), EncodeDisposition(Disposition::kUnknown));
    return;
  }
  // A recovering participant lost its volatile phase-1 promise, so the
  // transaction can no longer commit. Abort it; CommitPointReached checks
  // the state, so a MAT write already in flight cannot commit it afterwards.
  StartAbort(t, "participant node recovering");
  Reply(msg, Status::Ok(), EncodeDisposition(Disposition::kAborted));
}

// ---------------------------------------------------------------------------
// In-doubt resolution
// ---------------------------------------------------------------------------

void TmpProcess::ArmIndoubtResolve() {
  if (config_.indoubt_resolve_interval <= 0) return;
  SetTimer(config_.indoubt_resolve_interval, [this]() {
    if (IsPrimary()) {
      ResolveIndoubts();
      SweepOrphanLocks();
    }
    ArmIndoubtResolve();
  });
}

void TmpProcess::ResolveIndoubts() {
  std::vector<Transid> indoubt;
  for (const auto& [transid, txn] : txns_) {
    // One probe per transaction at a time: stacking a fresh call on every
    // tick while earlier ones are still timing out both multiplies traffic
    // at a dead home and double-counts blocked ticks.
    if (!txn.is_home && txn.state == TxnState::kEnding &&
        !txn.resolve_in_flight) {
      indoubt.push_back(transid);
    }
  }
  for (const Transid& t : indoubt) {
    if (t.home_node == node()->id()) continue;  // home resolves locally
    TxnEntry* probing = FindTxn(t);
    if (probing == nullptr) continue;
    if (config_.paxos_fast_path &&
        config_.commit_protocol == CommitProtocol::kPaxos &&
        !config_.acceptor_endpoints.empty()) {
      // Fast path: the acceptor log, not the home, owns the commit record,
      // so the per-tick kTmfResolveTxn probe is a wasted cross-node call —
      // it either times out against a dead home (the common reason the
      // window exists at all) or answers what an acceptor round settles
      // authoritatively anyway. Escalate straight to the acceptors; the
      // grace gate inside keeps healthy mid-flight commits un-usurped.
      MaybePaxosEscalate(t, probing);
      continue;
    }
    probing->resolve_in_flight = true;
    stats().Incr(m_.resolves_sent);
    os::CallOptions opt;
    // Diagnose a dead home within one resolve tick, not after the full
    // safe-call timeout: the Paxos Commit fallback below is useless if it
    // only engages after the home has already healed, and a blocked 2PC
    // participant should re-ask on every tick rather than stack timeouts.
    opt.timeout = config_.safe_call_timeout;
    if (config_.indoubt_resolve_interval > 0 &&
        config_.indoubt_resolve_interval < opt.timeout) {
      opt.timeout = config_.indoubt_resolve_interval;
    }
    Call(Tmp(t.home_node), kTmfResolveTxn,
         EncodeResolveTxn(t, /*recovering=*/false),
         [this, t](const Status& s, const net::Message& reply) {
           if (TxnEntry* probed = FindTxn(t)) probed->resolve_in_flight = false;
           if (!s.ok()) {
             TxnEntry* blocked = FindTxn(t);
             if (blocked == nullptr || blocked->state != TxnState::kEnding) {
               return;  // resolved by other means while the call was in flight
             }
             // Home unreachable while this participant still holds locks
             // in-doubt: one blocked resolution tick. 2PC can only retry
             // next tick, so each tick of a dead-home window adds one;
             // under Paxos Commit any live acceptor majority answers in the
             // home's stead, ending the window after the first blocked tick.
             stats().Incr(m_.indoubt_blocked_on_home);
             MaybePaxosEscalate(t, blocked);
             return;
           }
           Disposition d;
           if (!DecodeDisposition(Slice(reply.payload), &d)) {
             // Malformed reply: counted, not silently swallowed.
             stats().Incr(m_.resolve_malformed_replies);
             return;  // retry next tick
           }
           TxnEntry* txn = FindTxn(t);
           if (txn == nullptr || txn->state != TxnState::kEnding) return;
           if (d == Disposition::kCommitted) {
             stats().Incr(m_.indoubt_resolved_commits);
             ApplyRemoteCommit(t, txn);
           } else if (d == Disposition::kAborted) {
             stats().Incr(m_.indoubt_resolved_aborts);
             StartAbort(t, "in-doubt resolved by home");
           } else {
             // The home answered but does not know — a respawned home whose
             // seal round is still running, or one that lost its volatile
             // phase state. The acceptor log, not the home, owns the commit
             // record: go ask it rather than wait out another tick.
             MaybePaxosEscalate(t, txn);
           }
         },
         opt);
  }
}

void TmpProcess::SweepOrphanLocks() {
  for (const auto& name : config_.disc_processes) {
    os::CallOptions opt;
    opt.timeout = config_.safe_call_timeout;
    Call(net::Address(node()->id(), name), discprocess::kDiscListLockOwners,
         {},
         [this](const Status& s, const net::Message& reply) {
           if (!s.ok()) return;  // disc mid-takeover: sweep again next tick
           auto owners =
               discprocess::LockOwnersReply::Decode(Slice(reply.payload));
           if (!owners.ok()) return;
           for (const Transid& t : owners->owners) {
             if (FindTxn(t) != nullptr) {
               orphan_suspects_.erase(t);  // tracked after all: not orphaned
               continue;
             }
             // Two-strike rule: a holder unknown on one tick may be a
             // remote begin still registering; unknown on two consecutive
             // ticks is genuinely orphaned.
             if (orphan_suspects_.insert(t).second) continue;
             ResolveOrphanLock(t);
           }
         },
         opt);
  }
}

void TmpProcess::ResolveOrphanLock(const Transid& t) {
  // The durable record outranks everything: a local MAT completion record
  // (first-completion-wins) is the transaction's outcome.
  Disposition d = LookupDisposition(t);
  if (d != Disposition::kUnknown) {
    ApplyOrphanDisposition(t, d);
    return;
  }
  if (t.home_node == node()->id()) {
    // We are the home TMP, we do not track it, and the MAT has no record:
    // the transaction never reached its commit point. Presumed abort.
    ApplyOrphanDisposition(t, Disposition::kAborted);
    return;
  }
  stats().Incr(m_.resolves_sent);
  os::CallOptions opt;
  opt.timeout = config_.safe_call_timeout;
  Call(Tmp(t.home_node), kTmfResolveTxn, EncodeResolveTxn(t, /*recovering=*/false),
       [this, t](const Status& s, const net::Message& reply) {
         Disposition d;
         if (!s.ok() || !DecodeDisposition(Slice(reply.payload), &d)) {
           return;  // home unreachable: keep the suspect, retry next tick
         }
         if (d == Disposition::kUnknown) {
           // The home still tracks it live — the lock has an owner after
           // all; forget the suspicion.
           orphan_suspects_.erase(t);
           return;
         }
         if (FindTxn(t) != nullptr) return;  // registered meanwhile
         ApplyOrphanDisposition(t, d);
       },
       opt);
}

void TmpProcess::ApplyOrphanDisposition(const Transid& t, Disposition d) {
  orphan_suspects_.erase(t);
  // Recreate the entry and run the ordinary orphan pipeline (idempotent):
  // commit releases the locks and keeps the images; abort drives the
  // BACKOUTPROCESS so any re-applied images are undone before release.
  TxnEntry* txn = CreateTxn(t, /*is_home=*/t.home_node == node()->id(),
                            t.home_node);
  if (d == Disposition::kCommitted) {
    stats().Incr(m_.orphan_lock_commits);
    ApplyRemoteCommit(t, txn);
  } else {
    stats().Incr(m_.orphan_lock_aborts);
    StartAbort(t, "orphaned disc lock (transaction unknown everywhere)");
  }
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

void TmpProcess::OnNodeDown(net::NodeId peer) {
  if (!IsPrimary()) return;
  std::vector<Transid> to_abort;
  for (auto& [transid, txn] : txns_) {
    if (txn.state != TxnState::kActive) {
      // kEnding: a home/intermediate node's phase-1 call to the peer fails
      // by itself; a child that answered phase 1 affirmatively is in-doubt
      // and must hold its locks. kAborting: already on the way out.
      continue;
    }
    if (txn.children.count(peer) != 0) {
      to_abort.push_back(transid);  // participant lost: automatic abort
    } else if (!txn.is_home && txn.parent == peer) {
      to_abort.push_back(transid);  // lost our introducer: unilateral abort
      stats().Incr(m_.unilateral_aborts);
    }
  }
  for (const auto& t : to_abort) {
    StartAbort(t, "communication lost with node " + std::to_string(peer));
  }
}

void TmpProcess::OnNodeUp(net::NodeId) {
  if (IsPrimary()) TrySafeDeliveries();
}

// ---------------------------------------------------------------------------
// Safe delivery
// ---------------------------------------------------------------------------

void TmpProcess::QueueSafeDelivery(net::NodeId dest, uint32_t tag,
                                   const Transid& transid) {
  safe_queue_.push_back(SafeDelivery{dest, tag, transid, false});
  stats().Incr(m_.safe_queued);
  Trace(sim::TraceEventKind::kPhase2Queued, transid.Pack(), tag, dest);
  Bytes ckpt;
  PutFixed8(&ckpt, kCkptSafeAdd);
  PutFixed16(&ckpt, dest);
  PutFixed32(&ckpt, tag);
  PutFixed64(&ckpt, transid.Pack());
  SendCheckpoint(std::move(ckpt));
  TrySafeDeliveries();
}

void TmpProcess::TrySafeDeliveries() {
  for (auto it = safe_queue_.begin(); it != safe_queue_.end(); ++it) {
    if (it->in_flight) continue;
    it->in_flight = true;
    net::NodeId dest = it->dest;
    uint32_t tag = it->tag;
    Transid transid = it->transid;
    os::CallOptions opt;
    opt.timeout = config_.safe_call_timeout;
    Call(Tmp(dest), tag, EncodeTransidPayload(transid),
         [this, dest, tag, transid](const Status& s, const net::Message&) {
           for (auto qit = safe_queue_.begin(); qit != safe_queue_.end(); ++qit) {
             if (qit->dest == dest && qit->tag == tag &&
                 qit->transid == transid) {
               if (s.ok()) {
                 safe_queue_.erase(qit);
                 stats().Incr(m_.safe_delivered);
                 Bytes ckpt;
                 PutFixed8(&ckpt, kCkptSafeRemove);
                 PutFixed16(&ckpt, dest);
                 PutFixed32(&ckpt, tag);
                 PutFixed64(&ckpt, transid.Pack());
                 SendCheckpoint(std::move(ckpt));
                 MaybeQueueReclaim(transid);
               } else {
                 qit->in_flight = false;
               }
               break;
             }
           }
           if (!safe_queue_.empty() && safe_timer_ == 0) {
             safe_timer_ = SetTimer(config_.safe_retry_interval, [this]() {
               safe_timer_ = 0;
               TrySafeDeliveries();
             });
           }
         },
         opt);
  }
}

// ---------------------------------------------------------------------------
// Pair checkpointing and takeover
// ---------------------------------------------------------------------------

void TmpProcess::CheckpointTxn(const TxnEntry& txn, bool removed) {
  if (!HasBackup()) return;
  Bytes out;
  if (removed) {
    PutFixed8(&out, kCkptTxnRemove);
    PutFixed64(&out, txn.transid.Pack());
  } else {
    PutFixed8(&out, kCkptTxnUpsert);
    PutFixed64(&out, txn.transid.Pack());
    PutFixed8(&out, static_cast<uint8_t>(txn.state));
    PutFixed8(&out, txn.is_home ? 1 : 0);
    PutFixed16(&out, txn.parent);
    PutVarint32(&out, static_cast<uint32_t>(txn.children.size()));
    for (net::NodeId child : txn.children) PutFixed16(&out, child);
    PutFixed16(&out, txn.client.node);
    PutFixed32(&out, txn.client.pid);
    PutFixed64(&out, txn.client_req);
    PutFixed32(&out, txn.client_tag);
  }
  SendCheckpoint(std::move(out));
}

void TmpProcess::OnCheckpoint(const Slice& delta) {
  Slice in = delta;
  while (!in.empty()) {
    uint8_t type;
    if (!GetFixed8(&in, &type)) return;
    switch (type) {
      case kCkptTxnUpsert: {
        uint64_t packed;
        uint8_t state, is_home;
        uint16_t parent;
        uint32_t nchildren;
        if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &state) ||
            !GetFixed8(&in, &is_home) || !GetFixed16(&in, &parent) ||
            !GetVarint32(&in, &nchildren)) {
          return;
        }
        TxnEntry entry;
        entry.transid = Transid::Unpack(packed);
        entry.state = static_cast<TxnState>(state);
        entry.is_home = is_home != 0;
        entry.parent = parent;
        for (uint32_t i = 0; i < nchildren; ++i) {
          uint16_t child;
          if (!GetFixed16(&in, &child)) return;
          entry.children.insert(child);
        }
        uint16_t cnode;
        uint32_t cpid, ctag;
        uint64_t creq;
        if (!GetFixed16(&in, &cnode) || !GetFixed32(&in, &cpid) ||
            !GetFixed64(&in, &creq) || !GetFixed32(&in, &ctag)) {
          return;
        }
        entry.client = net::ProcessId{cnode, cpid};
        entry.client_req = creq;
        entry.client_tag = ctag;
        txns_[entry.transid] = std::move(entry);
        break;
      }
      case kCkptTxnRemove: {
        uint64_t packed;
        if (!GetFixed64(&in, &packed)) return;
        txns_.erase(Transid::Unpack(packed));
        break;
      }
      case kCkptSafeAdd: {
        uint16_t dest;
        uint32_t tag;
        uint64_t packed;
        if (!GetFixed16(&in, &dest) || !GetFixed32(&in, &tag) ||
            !GetFixed64(&in, &packed)) {
          return;
        }
        safe_queue_.push_back(
            SafeDelivery{dest, tag, Transid::Unpack(packed), false});
        break;
      }
      case kCkptSafeRemove: {
        uint16_t dest;
        uint32_t tag;
        uint64_t packed;
        if (!GetFixed16(&in, &dest) || !GetFixed32(&in, &tag) ||
            !GetFixed64(&in, &packed)) {
          return;
        }
        Transid t = Transid::Unpack(packed);
        for (auto it = safe_queue_.begin(); it != safe_queue_.end(); ++it) {
          if (it->dest == dest && it->tag == tag && it->transid == t) {
            safe_queue_.erase(it);
            break;
          }
        }
        break;
      }
      case kCkptSeq: {
        uint64_t seq;
        if (!GetFixed64(&in, &seq)) return;
        next_seq_ = seq;
        break;
      }
      default:
        return;
    }
  }
}

void TmpProcess::OnTakeover() {
  // Resume interrupted coordination. Every path is idempotent: audit forces
  // re-force, children answer phase 1 again, backout re-applies undos.
  std::vector<Transid> ending, aborting;
  for (auto& [transid, txn] : txns_) {
    if (txn.state == TxnState::kEnding && txn.is_home) ending.push_back(transid);
    if (txn.state == TxnState::kAborting) aborting.push_back(transid);
  }
  for (const auto& transid : ending) {
    stats().Incr(m_.takeover_resumed_commits);
    RunPhase1(FindTxn(transid), [this, transid](bool ok) {
      TxnEntry* txn = FindTxn(transid);
      if (txn == nullptr) return;
      if (ok && txn->state == TxnState::kEnding) {
        CompleteCommit(transid);
      } else if (txn->state == TxnState::kEnding) {
        if (FastPathFor(*txn)) StartPaxosFallback(transid);
        else StartAbort(transid, "takeover");
      }
    });
  }
  for (const auto& transid : aborting) {
    stats().Incr(m_.takeover_resumed_aborts);
    os::CallOptions opt;
    opt.timeout = config_.backout_timeout;
    opt.retries = 2;
    Call(net::Address(node()->id(), config_.backout_process), kBackoutTxn,
         EncodeTransidPayload(transid),
         [this, transid](const Status&, const net::Message&) {
           FinishAbort(transid);
         },
         opt);
  }
  for (auto& entry : safe_queue_) entry.in_flight = false;
  TrySafeDeliveries();
  // Timers died with the old primary: re-arm abandonment detection.
  for (const auto& [transid, txn] : txns_) {
    if (txn.state == TxnState::kActive) ArmAutoAbort(transid);
  }
}

void TmpProcess::OnBackupAttached() {
  Bytes seq_ckpt;
  PutFixed8(&seq_ckpt, kCkptSeq);
  PutFixed64(&seq_ckpt, next_seq_);
  SendCheckpoint(std::move(seq_ckpt));
  for (const auto& [transid, txn] : txns_) {
    (void)transid;
    CheckpointTxn(txn, false);
  }
  for (const auto& entry : safe_queue_) {
    Bytes ckpt;
    PutFixed8(&ckpt, kCkptSafeAdd);
    PutFixed16(&ckpt, entry.dest);
    PutFixed32(&ckpt, entry.tag);
    PutFixed64(&ckpt, entry.transid.Pack());
    SendCheckpoint(std::move(ckpt));
  }
}

}  // namespace encompass::tmf
