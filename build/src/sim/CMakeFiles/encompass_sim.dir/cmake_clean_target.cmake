file(REMOVE_RECURSE
  "libencompass_sim.a"
)
