// Wire protocol of the DISCPROCESS: request encoding shared by the file
// system (server side), TMF (state changes), and the BACKOUTPROCESS (undo).

#ifndef ENCOMPASS_DISCPROCESS_DISC_PROTOCOL_H_
#define ENCOMPASS_DISCPROCESS_DISC_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/slice.h"
#include "common/transid.h"
#include "net/message.h"
#include "storage/file.h"

namespace encompass::discprocess {

/// DISCPROCESS message tags.
enum DiscTag : uint32_t {
  kDiscRead = net::kTagDisc + 1,        ///< point read, optional record lock
  kDiscSeek = net::kTagDisc + 2,        ///< positioned read (>= / > key)
  kDiscInsert = net::kTagDisc + 3,      ///< insert (auto-locks the new key)
  kDiscUpdate = net::kTagDisc + 4,      ///< update (ensures the record lock)
  kDiscDelete = net::kTagDisc + 5,      ///< delete (ensures the record lock)
  kDiscReadAlt = net::kTagDisc + 6,     ///< alternate-key lookup
  kDiscLockFile = net::kTagDisc + 7,    ///< file-granularity lock
  kDiscTxnStateChange = net::kTagDisc + 8,  ///< from TMF: txn state broadcast
  kDiscUndo = net::kTagDisc + 9,        ///< from BACKOUTPROCESS: compensate
  kDiscFlushVolume = net::kTagDisc + 10,///< force cached data blocks to disc
  kDiscScan = net::kTagDisc + 11,       ///< batched range scan (browse read)
  /// From TMF: enumerate the transactions currently holding locks here. The
  /// TMP's orphan-lock sweep compares the reply against its transaction
  /// table and resolves unknown holders with the home TMP — locks acquired
  /// by an operation retry that raced a node crash/recovery would otherwise
  /// be held forever (no TMP tracks the transid any more).
  kDiscListLockOwners = net::kTagDisc + 12,
};

/// Transaction states a DISCPROCESS reacts to (subset of the TMF states).
enum class DiscTxnState : uint8_t {
  kAborting = 0,  ///< stop accepting work for the transaction; hold locks
  kEnded = 1,     ///< commit complete: release the transaction's locks
  kAborted = 2,   ///< backout complete: release the transaction's locks
};

/// One DISCPROCESS request. Field use depends on the tag; unused fields stay
/// empty and cost one varint each on the wire.
struct DiscRequest {
  std::string file;
  Bytes key;
  Bytes record;           ///< insert/update image; kDiscUndo: before-image
  std::string field;      ///< kDiscReadAlt
  std::string value;      ///< kDiscReadAlt
  bool lock = false;      ///< kDiscRead: acquire the record lock first
  bool inclusive = true;  ///< kDiscSeek / kDiscScan
  storage::MutationOp undo_op = storage::MutationOp::kInsert;  ///< kDiscUndo
  SimDuration lock_timeout = 0;  ///< 0 = DISCPROCESS default
  uint32_t max_records = 0;      ///< kDiscScan batch size (0 = server default)

  Bytes Encode() const;
  static Result<DiscRequest> Decode(const Slice& payload);
};

/// Reply payload of kDiscSeek.
struct SeekReply {
  Bytes key;
  Bytes value;

  Bytes Encode() const;
  static Result<SeekReply> Decode(const Slice& payload);
};

/// Reply payload of kDiscScan: a batch of records in key order, plus
/// whether the scan reached the end of this partition's file.
struct ScanReply {
  std::vector<SeekReply> entries;
  bool at_end = false;

  Bytes Encode() const;
  static Result<ScanReply> Decode(const Slice& payload);
};

/// Reply payload of kDiscListLockOwners: transactions holding >= 1 lock.
struct LockOwnersReply {
  std::vector<Transid> owners;

  Bytes Encode() const;
  static Result<LockOwnersReply> Decode(const Slice& payload);
};

/// Payload of kDiscTxnStateChange.
struct TxnStateChange {
  Transid transid;
  DiscTxnState state = DiscTxnState::kEnded;

  Bytes Encode() const;
  static Result<TxnStateChange> Decode(const Slice& payload);
};

}  // namespace encompass::discprocess

#endif  // ENCOMPASS_DISCPROCESS_DISC_PROTOCOL_H_
