// Queue execution lane tests: the QueuePlanner ($QPLAN) plans predeclared
// transactions into epochs and executes them lock-free in plan order, while
// committing through the ordinary TMF path. Pinned here: a clean commit
// moves the money without ever holding a record lock; a transaction naming
// a file outside its declared set is rejected with the distinct
// PlanViolation status before anything executes; the lock lane is untouched
// by the new lane; concurrent submits share one epoch; a runtime op failure
// aborts the whole transaction through BACKOUTPROCESS undo; and the lane is
// deterministic at every parallel-engine worker count.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "encompass/deployment.h"
#include "storage/record.h"
#include "tmf/file_system.h"
#include "tmf/queue_lane.h"
#include "tmf/tmf_protocol.h"
#include "test_util.h"

namespace encompass::app {
namespace {

using testutil::TestClient;

std::string AcctKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "acct%05d", i);
  return buf;
}

int64_t Balance(storage::Volume* vol, int i) {
  auto r = vol->ReadRecord("acct", Slice(AcctKey(i)));
  if (!r.status.ok()) return -1;
  auto rec = storage::Record::Decode(Slice(r.value));
  if (!rec.ok()) return -1;
  return strtoll(rec->Get("balance").c_str(), nullptr, 10);
}

struct QueueRig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<Deployment> deploy;
  storage::Volume* volume = nullptr;
  TestClient* client = nullptr;
};

QueueRig MakeRig(uint64_t seed, ExecLane lane) {
  QueueRig rig;
  rig.sim = std::make_unique<sim::Simulation>(seed);
  rig.deploy = std::make_unique<Deployment>(rig.sim.get());
  NodeSpec spec;
  spec.id = 1;
  spec.exec_lane = lane;
  spec.volumes = {VolumeSpec{
      "$DATA1", {FileSpec{"acct"}, FileSpec{"other"}}, {}}};
  rig.deploy->AddNode(spec);
  EXPECT_TRUE(rig.deploy->DefineFile("acct", 1, "$DATA1").ok());
  EXPECT_TRUE(rig.deploy->DefineFile("other", 1, "$DATA1").ok());
  rig.volume = rig.deploy->GetNode(1)->storage().volumes.at("$DATA1").get();
  for (int i = 0; i < 10; ++i) {
    storage::Record rec;
    rec.Set("balance", "1000");
    rig.volume->Mutate("acct", storage::MutationOp::kInsert,
                       Slice(AcctKey(i)), Slice(rec.Encode()));
  }
  rig.volume->Flush();
  rig.client = rig.deploy->GetNode(1)->node()->Spawn<TestClient>(2);
  rig.sim->Run();
  return rig;
}

tmf::QueueTxn TransferTxn(int from, int to, int64_t amount) {
  tmf::QueueTxn t;
  t.declared = {"acct"};
  tmf::QueueOp debit;
  debit.kind = tmf::QueueOp::Kind::kDelta;
  debit.file = "acct";
  debit.key = ToBytes(AcctKey(from));
  debit.field = "balance";
  debit.delta = -amount;
  tmf::QueueOp credit = debit;
  credit.key = ToBytes(AcctKey(to));
  credit.delta = amount;
  t.ops = {debit, credit};
  return t;
}

void Pump(sim::Simulation* sim, TestClient::Outcome* out) {
  for (int i = 0; i < 1000 && !out->done; ++i) sim->RunFor(Millis(5));
}

net::Address Qplan() { return net::Address(1, "$QPLAN"); }

// A clean transfer commits through the queue lane without a single record
// lock: the money moves, the TMF transaction drains, and the lock manager
// never saw the transaction.
TEST(QueueLaneTest, CommitsTransferLockFree) {
  QueueRig rig = MakeRig(3, ExecLane::kQueue);
  auto* out = rig.client->CallRaw(Qplan(), tmf::kTmfQueueSubmit,
                                  TransferTxn(0, 1, 100).Encode());
  Pump(rig.sim.get(), out);
  ASSERT_TRUE(out->done);
  ASSERT_TRUE(out->status.ok()) << out->status.ToString();

  auto rep = tmf::QueueTxnReply::Decode(Slice(out->payload));
  ASSERT_TRUE(rep.ok());
  EXPECT_NE(rep->transid, 0u);
  ASSERT_EQ(rep->results.size(), 2u);
  EXPECT_EQ(rep->results[0].status, Status::Code::kOk);
  EXPECT_EQ(rep->results[1].status, Status::Code::kOk);

  EXPECT_EQ(Balance(rig.volume, 0), 900);
  EXPECT_EQ(Balance(rig.volume, 1), 1100);
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.commits"), 1);
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.epochs"), 1);
  EXPECT_EQ(rig.sim->GetStats().Counter("lock.conflict_aborts"), 0);
  EXPECT_EQ(rig.deploy->GetNode(1)->disc("$DATA1")->locks().held_count(), 0u);
  EXPECT_EQ(rig.deploy->GetNode(1)->tmp()->ActiveTransactionCount(), 0u);
}

// An op naming a file outside the predeclared set is rejected with the
// distinct PlanViolation status at admission: no TMF BEGIN, no execution,
// nothing to back out.
TEST(QueueLaneTest, PlanViolationRejectedBeforeExecution) {
  QueueRig rig = MakeRig(5, ExecLane::kQueue);
  tmf::QueueTxn t = TransferTxn(0, 1, 50);
  tmf::QueueOp stray;
  stray.kind = tmf::QueueOp::Kind::kInsert;
  stray.file = "other";  // not in t.declared
  stray.key = ToBytes(std::string("k1"));
  storage::Record rec;
  rec.Set("v", "x");
  stray.record = rec.Encode();
  t.ops.push_back(stray);

  auto* out = rig.client->CallRaw(Qplan(), tmf::kTmfQueueSubmit, t.Encode());
  Pump(rig.sim.get(), out);
  ASSERT_TRUE(out->done);
  EXPECT_TRUE(out->status.IsPlanViolation()) << out->status.ToString();

  EXPECT_EQ(Balance(rig.volume, 0), 1000);
  EXPECT_EQ(Balance(rig.volume, 1), 1000);
  EXPECT_FALSE(
      rig.volume->ReadRecord("other", Slice(std::string("k1"))).status.ok());
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.plan_violations"), 1);
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.epochs"), 0);
  EXPECT_EQ(rig.deploy->GetNode(1)->tmp()->ActiveTransactionCount(), 0u);
}

// The lock lane is unaffected by the new lane and status: a kLocks node
// spawns no $QPLAN, and an ordinary locked transaction touching any file it
// likes (no declaration concept) commits exactly as before.
TEST(QueueLaneTest, LockLaneUnaffected) {
  QueueRig rig = MakeRig(7, ExecLane::kLocks);
  EXPECT_EQ(rig.deploy->GetNode(1)->node()->LookupName("$QPLAN"), 0u);

  auto* b = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  rig.sim->Run();
  ASSERT_TRUE(b->done && b->status.ok());
  uint64_t t = tmf::DecodeTransidPayload(Slice(b->payload))->Pack();

  tmf::FileSystem fs(rig.client, &rig.deploy->catalog());
  bool done = false;
  Status st;
  storage::Record rec;
  rec.Set("v", "y");
  rig.client->set_current_transid(t);
  fs.Insert("other", Slice(std::string("k2")), Slice(rec.Encode()),
            [&](const Status& s, const Bytes&) {
              st = s;
              done = true;
            });
  rig.client->set_current_transid(0);
  rig.sim->Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(st.IsPlanViolation());

  auto* e = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(Transid::Unpack(t)),
                                t);
  Pump(rig.sim.get(), e);
  ASSERT_TRUE(e->done && e->status.ok());
  EXPECT_TRUE(rig.volume->ReadRecord("other", Slice(std::string("k2")))
                  .status.ok());
}

// Submits landing within one batch window share one epoch (the group-commit
// idiom): three concurrent transfers, one epoch, three commits.
TEST(QueueLaneTest, EpochBatchesConcurrentSubmits) {
  QueueRig rig = MakeRig(11, ExecLane::kQueue);
  std::vector<TestClient::Outcome*> outs;
  outs.push_back(rig.client->CallRaw(Qplan(), tmf::kTmfQueueSubmit,
                                     TransferTxn(0, 1, 10).Encode()));
  outs.push_back(rig.client->CallRaw(Qplan(), tmf::kTmfQueueSubmit,
                                     TransferTxn(2, 3, 20).Encode()));
  outs.push_back(rig.client->CallRaw(Qplan(), tmf::kTmfQueueSubmit,
                                     TransferTxn(4, 5, 30).Encode()));
  for (auto* out : outs) Pump(rig.sim.get(), out);
  for (auto* out : outs) {
    ASSERT_TRUE(out->done);
    EXPECT_TRUE(out->status.ok()) << out->status.ToString();
  }
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.submits"), 3);
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.epochs"), 1);
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.commits"), 3);
  EXPECT_EQ(Balance(rig.volume, 0), 990);
  EXPECT_EQ(Balance(rig.volume, 1), 1010);
  EXPECT_EQ(Balance(rig.volume, 4), 970);
  EXPECT_EQ(Balance(rig.volume, 5), 1030);
}

// A runtime op failure (update of a key that does not exist) aborts the
// whole transaction through the ordinary BACKOUTPROCESS undo: ops that
// already executed are rolled back, and the reply carries both the Aborted
// verdict and the failing op's status.
TEST(QueueLaneTest, RuntimeFailureAbortsAndBacksOut) {
  QueueRig rig = MakeRig(13, ExecLane::kQueue);
  tmf::QueueTxn t;
  t.declared = {"acct"};
  tmf::QueueOp debit;
  debit.kind = tmf::QueueOp::Kind::kDelta;
  debit.file = "acct";
  debit.key = ToBytes(AcctKey(0));
  debit.field = "balance";
  debit.delta = -50;
  tmf::QueueOp bad;
  bad.kind = tmf::QueueOp::Kind::kUpdate;
  bad.file = "acct";
  bad.key = ToBytes(std::string("no-such-account"));
  storage::Record rec;
  rec.Set("balance", "1");
  bad.record = rec.Encode();
  t.ops = {debit, bad};

  auto* out = rig.client->CallRaw(Qplan(), tmf::kTmfQueueSubmit, t.Encode());
  Pump(rig.sim.get(), out);
  ASSERT_TRUE(out->done);
  EXPECT_TRUE(out->status.IsAborted()) << out->status.ToString();

  auto rep = tmf::QueueTxnReply::Decode(Slice(out->payload));
  ASSERT_TRUE(rep.ok());
  ASSERT_EQ(rep->results.size(), 2u);
  EXPECT_NE(rep->results[1].status, Status::Code::kOk);

  EXPECT_EQ(Balance(rig.volume, 0), 1000);  // the debit was undone
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.aborts"), 1);
  EXPECT_EQ(rig.sim->GetStats().Counter("queue.commits"), 0);
  EXPECT_EQ(rig.deploy->GetNode(1)->disc("$DATA1")->locks().held_count(), 0u);
  EXPECT_EQ(rig.deploy->GetNode(1)->tmp()->ActiveTransactionCount(), 0u);
}

// Two queue-lane nodes over a partitioned file, driven concurrently: the
// run's full history — reply statuses, every balance, the complete stats
// registry — is byte-identical at every engine worker count.
std::string RunTwoNodeScenario(int workers) {
  sim::Simulation sim(17, workers);
  Deployment deploy(&sim);
  for (int n = 1; n <= 2; ++n) {
    NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.exec_lane = ExecLane::kQueue;
    spec.volumes = {VolumeSpec{
        "$DATA" + std::to_string(n), {FileSpec{"acct"}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  storage::FileDefinition def;
  def.name = "acct";
  def.partitions.AddPartition(ToBytes(AcctKey(10)), 1, "$DATA1");
  def.partitions.AddPartition({}, 2, "$DATA2");
  EXPECT_TRUE(deploy.DefinePartitionedFile(def).ok());
  for (int n = 1; n <= 2; ++n) {
    auto* vol =
        deploy.GetNode(static_cast<net::NodeId>(n))->storage().volumes
            .at("$DATA" + std::to_string(n))
            .get();
    for (int i = (n - 1) * 10; i < n * 10; ++i) {
      storage::Record rec;
      rec.Set("balance", "1000");
      vol->Mutate("acct", storage::MutationOp::kInsert, Slice(AcctKey(i)),
                  Slice(rec.Encode()));
    }
    vol->Flush();
  }
  TestClient* clients[2];
  for (int n = 1; n <= 2; ++n) {
    clients[n - 1] =
        deploy.GetNode(static_cast<net::NodeId>(n))->node()->Spawn<TestClient>(2);
  }
  sim.Run();

  std::vector<TestClient::Outcome*> outs;
  for (int n = 1; n <= 2; ++n) {
    int base = (n - 1) * 10;
    for (int k = 0; k < 5; ++k) {
      outs.push_back(clients[n - 1]->CallRaw(
          net::Address(static_cast<net::NodeId>(n), "$QPLAN"),
          tmf::kTmfQueueSubmit,
          TransferTxn(base + k, base + (k + 3) % 10, 7 + k).Encode()));
    }
  }
  for (auto* out : outs) Pump(&sim, out);

  std::string digest;
  for (auto* out : outs) {
    digest += out->done ? StatusCodeName(out->status.code()) : "pending";
    digest += ";";
  }
  for (int i = 0; i < 20; ++i) {
    int n = 1 + i / 10;
    auto* vol = deploy.GetNode(static_cast<net::NodeId>(n))
                    ->storage().volumes.at("$DATA" + std::to_string(n))
                    .get();
    digest += std::to_string(Balance(vol, i)) + ",";
  }
  digest += "\n" + sim.GetStats().ToString();
  return digest;
}

TEST(QueueLaneTest, DeterministicAcrossWorkerCounts) {
  const std::string base = RunTwoNodeScenario(0);
  EXPECT_NE(base.find("OK;"), std::string::npos);
  for (int workers : {1, 2, 4}) {
    EXPECT_EQ(RunTwoNodeScenario(workers), base) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace encompass::app
