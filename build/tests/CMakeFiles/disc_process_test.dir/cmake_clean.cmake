file(REMOVE_RECURSE
  "CMakeFiles/disc_process_test.dir/disc_process_test.cc.o"
  "CMakeFiles/disc_process_test.dir/disc_process_test.cc.o.d"
  "disc_process_test"
  "disc_process_test.pdb"
  "disc_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
