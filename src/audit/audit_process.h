// AuditProcess: the process-pair that writes audit trails. "All audited
// discs on a given controller share an AUDITPROCESS and an audit trail." It
// accepts appended images from DISCPROCESSes (unforced), forces the trail to
// disc on request (phase one of commit), and serves per-transaction image
// fetches for the BACKOUTPROCESS and for ROLLFORWARD.

#ifndef ENCOMPASS_AUDIT_AUDIT_PROCESS_H_
#define ENCOMPASS_AUDIT_AUDIT_PROCESS_H_

#include <string>
#include <vector>

#include "audit/audit_trail.h"
#include "os/process_pair.h"

namespace encompass::audit {

/// Audit protocol tags.
enum AuditTag : uint32_t {
  kAuditAppend = net::kTagAudit + 1,   ///< one-way: batch of AuditRecords
  kAuditForce = net::kTagAudit + 2,    ///< request: force trail to disc
  kAuditFetchTxn = net::kTagAudit + 3, ///< request: all images of a transid
  kAuditPurge = net::kTagAudit + 4,    ///< request: drop audit files <= lsn
                                       ///  (payload: fixed64 up_to_lsn);
                                       ///  reply payload: varint files purged
};

/// Encodes a batch of audit records for a kAuditAppend payload.
Bytes EncodeAuditBatch(const std::vector<AuditRecord>& records);
/// Decodes a batch; Corruption on malformed input.
Result<std::vector<AuditRecord>> DecodeAuditBatch(const Slice& payload);

/// Behaviour knobs for the audit process.
struct AuditProcessConfig {
  AuditTrail* trail = nullptr;          ///< shared durable trail (disc state)
  SimDuration force_latency = Millis(8);///< disc force (sequential write) cost
  /// Group commit: how long the first force request of a batch waits for
  /// company before the physical write starts. 0 (default) starts the write
  /// immediately; requests arriving while a write is in flight still
  /// coalesce into the next write either way.
  SimDuration group_commit_window = 0;
};

/// The AUDITPROCESS pair.
class AuditProcess : public os::PairedProcess {
 public:
  explicit AuditProcess(AuditProcessConfig config) : config_(config) {}

  std::string DebugName() const override { return pair_name() + "/audit"; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;

 private:
  void HandleAppend(const net::Message& msg);
  void HandleForce(const net::Message& msg);
  void HandleFetch(const net::Message& msg);

  /// One coalesced force requester, remembered until its write lands.
  struct ForceWaiter {
    net::ProcessId requester;
    uint64_t reply_to = 0;
    uint32_t tag = 0;
    sim::TraceContext trace;  ///< reply under the waiter's own causal span
  };

  /// Starts the physical write for everything in waiting_; replies to the
  /// whole batch when it lands and begins the next cycle if more arrived.
  void StartForceWrite();
  /// Schedules the next write cycle (honouring the batching window).
  void ArmForceWrite();

  struct Metrics {
    sim::MetricId appended, forces, forced_records, files_purged;
    sim::MetricId group_commit_size;  // histogram
  };

  AuditProcessConfig config_;
  Metrics m_;
  // Group-commit state (primary-only, volatile: waiters re-drive via the
  // file-system retry on takeover).
  std::vector<ForceWaiter> waiting_;   ///< force the *next* physical write
  bool gathering_ = false;             ///< window timer armed
  bool write_in_flight_ = false;       ///< force_latency timer armed
};

}  // namespace encompass::audit

#endif  // ENCOMPASS_AUDIT_AUDIT_PROCESS_H_
