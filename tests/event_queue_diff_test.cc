// Randomized differential test: the production EventQueue (EventFn callbacks,
// generation-stamped slot cancellation) against ReferenceEventQueue (the old
// std::function + hash-set implementation). Both are driven with identical
// operation sequences — schedules, keyed inserts, pops, and cancels aimed at
// live, fired, cancelled, and never-issued ids — and must agree on firing
// order, key/exec_node attribution, live-size accounting, and whether each
// cancel took effect.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "reference_event_queue.h"
#include "sim/event_queue.h"

namespace encompass::sim {
namespace {

struct IdPair {
  EventId prod;
  testing::ReferenceEventQueue::EventId ref;
};

TEST(EventQueueDiffTest, RandomizedOperationSequences) {
  for (uint32_t trial = 0; trial < 24; ++trial) {
    std::mt19937_64 rng(0xD1FF0000 + trial);
    EventQueue prod(/*origin=*/3);
    testing::ReferenceEventQueue ref(/*origin=*/3);

    std::vector<IdPair> issued;   // every locally scheduled pair, ever
    std::vector<std::string> prod_fired, ref_fired;
    uint64_t keyed_seq = 1;
    int label = 0;

    const int ops = 400;
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 5) {
        case 0:
        case 1: {  // local schedule, occasionally at a tied time
          const SimTime when = 50 + rng() % 40;
          const auto exec = static_cast<uint16_t>(3 + rng() % 2);
          const std::string tag = "L" + std::to_string(label++);
          issued.push_back(IdPair{
              prod.Schedule(when, exec,
                            [&prod_fired, tag]() { prod_fired.push_back(tag); }),
              ref.Schedule(when, exec,
                           [&ref_fired, tag]() { ref_fired.push_back(tag); })});
          break;
        }
        case 2: {  // keyed insert from a foreign origin
          const EventKey key{50 + rng() % 40,
                             static_cast<uint16_t>(7 + rng() % 2), keyed_seq++};
          const std::string tag = "K" + std::to_string(label++);
          prod.ScheduleKeyed(key, key.origin,
                             [&prod_fired, tag]() { prod_fired.push_back(tag); });
          ref.ScheduleKeyed(key, key.origin,
                            [&ref_fired, tag]() { ref_fired.push_back(tag); });
          break;
        }
        case 3: {  // cancel: a previously issued pair (any state) or garbage
          const size_t before_p = prod.size();
          bool ref_effect;
          if (!issued.empty() && rng() % 4 != 0) {
            const IdPair& p = issued[rng() % issued.size()];
            prod.Cancel(p.prod);
            ref_effect = ref.Cancel(p.ref);
          } else {
            // Ids no queue ever issued: 0 and large garbage. Both must be
            // exact no-ops.
            const EventId junk = (rng() % 2 == 0) ? 0 : (rng() | (1ull << 47));
            prod.Cancel(junk);
            ref_effect = false;
          }
          const bool prod_effect = prod.size() != before_p;
          ASSERT_EQ(prod_effect, ref_effect) << "trial " << trial << " op " << op;
          break;
        }
        case 4: {  // pop one (if any): identical key, attribution, payload
          ASSERT_EQ(prod.empty(), ref.empty());
          if (prod.empty()) break;
          EventKey pk, rk;
          uint16_t pe, re;
          prod.PopNext(&pk, &pe)();
          ref.PopNext(&rk, &re)();
          ASSERT_EQ(pk.time, rk.time);
          ASSERT_EQ(pk.origin, rk.origin);
          ASSERT_EQ(pk.seq, rk.seq);
          ASSERT_EQ(pe, re);
          break;
        }
      }
      ASSERT_EQ(prod.size(), ref.size()) << "trial " << trial << " op " << op;
      ASSERT_EQ(prod.NextTime(), ref.NextTime());
    }

    // Drain completely; firing sequences must be identical.
    while (!prod.empty()) {
      ASSERT_FALSE(ref.empty());
      EventKey pk, rk;
      uint16_t pe, re;
      prod.PopNext(&pk, &pe)();
      ref.PopNext(&rk, &re)();
      ASSERT_EQ(pk.seq, rk.seq);
      ASSERT_EQ(pe, re);
    }
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(prod_fired, ref_fired) << "trial " << trial;
  }
}

// Slot reuse stress: schedule/cancel/fire churn far past the initial slot
// population, then verify stale ids from every earlier round stay no-ops.
TEST(EventQueueDiffTest, SlotReuseKeepsStaleIdsDead) {
  EventQueue q(1);
  std::vector<EventId> stale;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    EventId keep = q.Schedule(10 + round, [&fired]() { ++fired; });
    EventId dead = q.Schedule(10 + round, [&fired]() { fired += 1000; });
    q.Cancel(dead);
    stale.push_back(dead);
    stale.push_back(keep);  // becomes stale once fired below
    SimTime when;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, 200);
  EXPECT_TRUE(q.empty());
  const size_t size_before = q.size();
  for (EventId id : stale) q.Cancel(id);
  EXPECT_EQ(q.size(), size_before);
  // The queue still works after the churn.
  q.Schedule(1, [&fired]() { ++fired; });
  SimTime when;
  q.PopNext(&when)();
  EXPECT_EQ(fired, 201);
}

}  // namespace
}  // namespace encompass::sim
