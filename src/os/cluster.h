// Cluster: the whole simulated world — a set of Nodes joined by a Network,
// all driven by one Simulation. Owns the fault-injection entry points used
// by tests and benchmarks.

#ifndef ENCOMPASS_OS_CLUSTER_H_
#define ENCOMPASS_OS_CLUSTER_H_

#include <map>
#include <memory>

#include "net/network.h"
#include "os/node.h"
#include "sim/simulation.h"

namespace encompass::os {

/// A network of Tandem nodes under simulation.
class Cluster {
 public:
  Cluster(sim::Simulation* sim, net::NetworkConfig net_config = {});

  sim::Simulation* sim() const { return sim_; }
  net::Network& network() { return network_; }

  /// Creates a node. Node ids must be unique; typical configs use 1..N.
  Node* AddNode(net::NodeId id, NodeConfig config = {});
  Node* GetNode(net::NodeId id) const;
  std::vector<net::NodeId> NodeIds() const;

  /// Adds a bidirectional network link between two existing nodes.
  void Link(net::NodeId a, net::NodeId b, SimDuration latency = 0);

  // -- Fault-injection conveniences -------------------------------------------

  void FailCpu(net::NodeId node, int cpu) { GetNode(node)->FailCpu(cpu); }
  void ReloadCpu(net::NodeId node, int cpu) { GetNode(node)->ReloadCpu(cpu); }
  void CutLink(net::NodeId a, net::NodeId b) { network_.SetLinkUp(a, b, false); }
  void RestoreLink(net::NodeId a, net::NodeId b) { network_.SetLinkUp(a, b, true); }
  void IsolateNode(net::NodeId id) { network_.IsolateNode(id); }
  void ReconnectNode(net::NodeId id) { network_.ReconnectNode(id); }
  /// Fails every CPU of a node: total node failure.
  void CrashNode(net::NodeId id);
  /// Reverses CrashNode: cold-reloads every CPU, restores both buses, and
  /// reconnects the node's network links. Processes and volatile state are
  /// gone — the caller re-spawns services (and runs ROLLFORWARD) afterwards.
  void ReloadNode(net::NodeId id);

 private:
  sim::Simulation* sim_;
  net::Network network_;
  std::map<net::NodeId, std::unique_ptr<Node>> nodes_;
};

}  // namespace encompass::os

#endif  // ENCOMPASS_OS_CLUSTER_H_
