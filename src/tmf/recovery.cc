#include "tmf/recovery.h"

#include <vector>

#include "common/logging.h"
#include "os/node.h"
#include "tmf/commit_acceptor.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

void NodeRecoveryProcess::OnAttach() {
  m_runs_ = stats().RegisterCounter("recovery.runs");
  m_negotiations_ = stats().RegisterCounter("recovery.negotiations");
  m_negotiation_retries_ = stats().RegisterCounter("recovery.negotiation_retries");
  m_presumed_aborts_ = stats().RegisterCounter("recovery.presumed_aborts");
  m_max_retry_attempts_ = stats().RegisterCounter("recovery.max_retry_attempts");
  m_paxos_resolves_ = stats().RegisterCounter("recovery.paxos_resolves");
}

void NodeRecoveryProcess::OnStart() {
  stats().Incr(m_runs_);
  for (const auto& task : config_.tasks) {
    RollforwardInput input;
    input.volume = task.volume;
    input.archive = task.archive;
    input.trail = task.trail;
    input.archive_lsn = task.archive_lsn;
    input.monitor_trail = config_.monitor_trail;
    auto plan = PlanRollforward(input);
    if (!plan.ok()) {
      LOG_ERROR << DebugName() << " cannot plan rollforward of "
                << task.volume->name() << ": " << plan.status().ToString();
      continue;
    }
    planned_.push_back(PlannedVolume{task, std::move(*plan)});
  }

  for (const auto& pv : planned_) {
    for (const Transid& t : pv.plan.unresolved) {
      if (t.home_node == node()->id()) {
        if (PaxosAvailable()) {
          // Paxos Commit: the commit point is external, so "no local MAT
          // record" proves nothing. Seal the instance at the acceptors —
          // the abort-proposing round either fixes abort durably or adopts
          // a commit the crash hid from us.
          pending_[t].own_home = true;
          continue;
        }
        // Home transactions with no durable MAT completion never committed:
        // the forced home MAT record is the commit point, it survives the
        // crash, and it is absent. Record the presumed abort durably so
        // in-doubt participants elsewhere resolve against it instantly.
        if (negotiated_.emplace(t, Disposition::kAborted).second) {
          stats().Incr(m_presumed_aborts_);
          if (config_.monitor_trail != nullptr) {
            config_.monitor_trail->AppendForced(
                audit::CompletionRecord{t, audit::Completion::kAborted});
          }
        }
      } else {
        pending_.emplace(t, Negotiation{});
      }
    }
  }
  NegotiateAll();
}

void NodeRecoveryProcess::NegotiateAll() {
  if (pending_.empty()) {
    Finish();
    return;
  }
  // All pending transids negotiate concurrently: one unreachable home must
  // not head-of-line block the answers other (live) homes can give now.
  std::vector<Transid> ts;
  ts.reserve(pending_.size());
  for (const auto& [t, n] : pending_) {
    if (!n.in_flight) ts.push_back(t);
  }
  for (const Transid& t : ts) Negotiate(t);
}

void NodeRecoveryProcess::Negotiate(const Transid& t) {
  auto it = pending_.find(t);
  if (it == pending_.end() || it->second.in_flight) return;
  if (it->second.own_home) {
    ResolvePaxos(t);
    return;
  }
  it->second.in_flight = true;
  os::CallOptions opt;
  opt.timeout = config_.resolve_timeout;
  Call(net::Address(t.home_node, "$TMP"), kTmfResolveTxn,
       EncodeResolveTxn(t, /*recovering=*/true),
       [this, t](const Status& s, const net::Message& reply) {
         auto it = pending_.find(t);
         if (it == pending_.end()) return;
         it->second.in_flight = false;
         Disposition d = Disposition::kUnknown;
         if (s.ok()) DecodeDisposition(Slice(reply.payload), &d);
         if (d != Disposition::kUnknown) {
           Settle(t, d);
           return;
         }
         if (!s.ok() && PaxosAvailable()) {
           // Home unreachable; under Paxos Commit any live acceptor
           // majority answers in its stead — no waiting for the home.
           ResolvePaxos(t);
           return;
         }
         // Home unreachable (or still deciding): negotiation simply waits.
         // The campaign's single-open-heavy-fault discipline guarantees
         // the home comes back; there is no safe unilateral answer here.
         RetryLater(t);
       },
       opt);
}

void NodeRecoveryProcess::ResolvePaxos(const Transid& t) {
  auto it = pending_.find(t);
  if (it == pending_.end() || it->second.in_flight) return;
  it->second.in_flight = true;
  PaxosRoundConfig cfg;
  cfg.acceptor_nodes = config_.acceptor_nodes;
  cfg.acceptor_process = config_.acceptor_process;
  cfg.endpoints = config_.acceptor_endpoints;
  cfg.call_timeout = config_.resolve_timeout;
  auto settled = [this, t](Disposition chosen) {
    auto it = pending_.find(t);
    if (it == pending_.end()) return;
    it->second.in_flight = false;
    if (chosen == Disposition::kUnknown) {
      RetryLater(t);
      return;
    }
    stats().Incr(m_paxos_resolves_);
    Settle(t, chosen);
  };
  if (config_.paxos_fast_path) {
    // Fast path: per-voter instances. ResolvePaxosOutcome settles the home
    // instance first (revealing the participant set), then each voter's.
    ResolvePaxosOutcome(this, cfg, t, it->second.paxos_attempt++,
                        /*fast_path=*/true, std::move(settled));
    return;
  }
  RunPaxosRound(this, cfg, t, it->second.paxos_attempt++,
                Disposition::kAborted, /*skip_prepare=*/false,
                std::move(settled));
}

void NodeRecoveryProcess::Settle(const Transid& t, Disposition d) {
  stats().Incr(m_negotiations_);
  negotiated_[t] = d;
  if (config_.monitor_trail != nullptr) {
    config_.monitor_trail->AppendForced(audit::CompletionRecord{
        t, d == Disposition::kCommitted ? audit::Completion::kCommitted
                                        : audit::Completion::kAborted});
  }
  pending_.erase(t);
  if (pending_.empty()) Finish();
}

void NodeRecoveryProcess::RetryLater(const Transid& t) {
  auto it = pending_.find(t);
  if (it == pending_.end() || it->second.in_flight) return;
  Negotiation& n = it->second;
  ++n.attempts;
  stats().Incr(m_negotiation_retries_);
  if (n.attempts > reported_max_attempts_) {
    // High-water gauge over a counter substrate: the counter always equals
    // the largest attempt count any single transid has needed, so a
    // permanently stuck negotiation is visible as it climbs every round.
    stats().Incr(m_max_retry_attempts_, n.attempts - reported_max_attempts_);
    reported_max_attempts_ = n.attempts;
  }
  SetTimer(BackoffDelay(t, n.attempts), [this, t]() { Negotiate(t); });
}

SimDuration NodeRecoveryProcess::BackoffDelay(const Transid& t,
                                              uint32_t attempts) const {
  // Capped exponential backoff with deterministic jitter: the same
  // (jitter_seed, transid, attempt) always waits the same time, so recovery
  // schedules replay bit-identically across engines, yet concurrent
  // negotiations de-synchronise instead of hammering a dead home in
  // lockstep.
  const SimDuration base = config_.retry_interval;
  uint32_t shift = attempts > 0 ? attempts - 1 : 0;
  if (shift > 6) shift = 6;
  SimDuration delay = base << shift;
  if (delay > config_.retry_backoff_cap) delay = config_.retry_backoff_cap;
  uint64_t h = config_.jitter_seed ^ (t.Pack() * 0x9e3779b97f4a7c15ull) ^
               (static_cast<uint64_t>(attempts) * 0xbf58476d1ce4e5b9ull);
  h ^= h >> 31;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 29;
  const SimDuration jitter =
      static_cast<SimDuration>(h % (static_cast<uint64_t>(base) + 1));
  return delay + jitter;
}

void NodeRecoveryProcess::Finish() {
  std::vector<RollforwardReport> reports;
  for (auto& pv : planned_) {
    for (const Transid& t : pv.plan.unresolved) {
      auto it = negotiated_.find(t);
      if (it != negotiated_.end()) pv.plan.dispositions[t] = it->second;
    }
    RollforwardInput input;
    input.volume = pv.task.volume;
    input.archive = pv.task.archive;
    input.trail = pv.task.trail;
    input.archive_lsn = pv.task.archive_lsn;
    input.monitor_trail = config_.monitor_trail;
    auto report = ExecuteRollforward(input, pv.plan);
    if (!report.ok()) {
      LOG_ERROR << DebugName() << " rollforward of " << pv.task.volume->name()
                << " failed: " << report.status().ToString();
      reports.push_back(RollforwardReport{});
      continue;
    }
    // The rebuilt volume holds exactly archive + committed redo: nothing in
    // the trail up to this point is undoable any more.
    pv.task.trail->SetUndoFloor(pv.task.trail->next_lsn() - 1);
    reports.push_back(*report);
  }
  done_ = true;
  if (config_.on_done) config_.on_done(reports);  // may destroy this process
}

}  // namespace encompass::tmf
