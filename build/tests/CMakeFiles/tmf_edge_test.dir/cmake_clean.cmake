file(REMOVE_RECURSE
  "CMakeFiles/tmf_edge_test.dir/tmf_edge_test.cc.o"
  "CMakeFiles/tmf_edge_test.dir/tmf_edge_test.cc.o.d"
  "tmf_edge_test"
  "tmf_edge_test.pdb"
  "tmf_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmf_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
