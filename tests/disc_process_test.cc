// Integration tests for the DISCPROCESS pair: record operations, locking
// with timeout deadlock resolution, audit generation, transaction state
// changes, backout undo, and takeover with duplicate suppression.

#include <gtest/gtest.h>

#include "audit/audit_process.h"
#include "audit/audit_trail.h"
#include "discprocess/disc_process.h"
#include "discprocess/disc_protocol.h"
#include "os/cluster.h"
#include "os/process_pair.h"
#include "storage/volume.h"
#include "test_util.h"

namespace encompass::discprocess {
namespace {

using testutil::TestClient;

class DiscProcessTest : public ::testing::Test {
 protected:
  DiscProcessTest()
      : sim_(7), cluster_(&sim_), volume_("$DATA1"), trail_("AT1") {
    node_ = cluster_.AddNode(1);

    storage::FileOptions audited;
    audited.audited = true;
    EXPECT_TRUE(
        volume_.CreateFile("acct", storage::FileOrganization::kKeySequenced, audited)
            .ok());
    EXPECT_TRUE(
        volume_.CreateFile("scratch", storage::FileOrganization::kKeySequenced)
            .ok());
    storage::FileOptions log_opt;
    log_opt.audited = true;
    EXPECT_TRUE(
        volume_.CreateFile("log", storage::FileOrganization::kEntrySequenced,
                           log_opt)
            .ok());

    audit::AuditProcessConfig acfg;
    acfg.trail = &trail_;
    os::SpawnPair<audit::AuditProcess>(node_, "$AUDIT", 0, 1, acfg);

    DiscProcessConfig dcfg;
    dcfg.volume = &volume_;
    dcfg.audit_process = "$AUDIT";
    dcfg.default_lock_timeout = Millis(200);
    disc_ = os::SpawnPair<DiscProcess>(node_, "$DATA1", 0, 1, dcfg);

    client_ = node_->Spawn<TestClient>(2);
    client2_ = node_->Spawn<TestClient>(3);
    sim_.Run();
  }

  net::Address Disc() { return net::Address(1, "$DATA1"); }

  uint64_t Txn(uint64_t seq) { return Transid{1, 0, seq}.Pack(); }

  TestClient::Outcome* Op(TestClient* c, uint32_t tag, DiscRequest req,
                          uint64_t transid, os::CallOptions opt = {}) {
    return c->CallRaw(Disc(), tag, req.Encode(), transid, opt);
  }

  void EndTxn(uint64_t transid, DiscTxnState state) {
    TxnStateChange change;
    change.transid = Transid::Unpack(transid);
    change.state = state;
    client_->SendRaw(Disc(), kDiscTxnStateChange, change.Encode());
  }

  sim::Simulation sim_;
  os::Cluster cluster_;
  os::Node* node_;
  storage::Volume volume_;
  audit::AuditTrail trail_;
  os::PairHandles<DiscProcess> disc_;
  TestClient* client_;
  TestClient* client2_;
};

TEST_F(DiscProcessTest, InsertReadUpdateDeleteUnderTransaction) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  auto* r1 = Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  ASSERT_TRUE(r1->done);
  EXPECT_TRUE(r1->status.ok());
  EXPECT_EQ(ToString(r1->payload), "a1");  // assigned key echoed

  DiscRequest rd;
  rd.file = "acct";
  rd.key = ToBytes("a1");
  auto* r2 = Op(client_, kDiscRead, rd, Txn(1));
  sim_.Run();
  EXPECT_TRUE(r2->status.ok());
  EXPECT_EQ(ToString(r2->payload), "100");

  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("150");
  auto* r3 = Op(client_, kDiscUpdate, up, Txn(1));
  sim_.Run();
  EXPECT_TRUE(r3->status.ok());

  DiscRequest del;
  del.file = "acct";
  del.key = ToBytes("a1");
  auto* r4 = Op(client_, kDiscDelete, del, Txn(1));
  sim_.Run();
  EXPECT_TRUE(r4->status.ok());

  // Audit trail received one image per mutation.
  auto images = trail_.RecordsForTransaction(Transid{1, 0, 1});
  ASSERT_EQ(images.size(), 3u);
  EXPECT_EQ(images[0].op, storage::MutationOp::kInsert);
  EXPECT_EQ(ToString(images[1].before), "100");
  EXPECT_EQ(ToString(images[1].after), "150");
  EXPECT_EQ(images[2].op, storage::MutationOp::kDelete);
  EXPECT_EQ(ToString(images[2].before), "150");
}

TEST_F(DiscProcessTest, AuditedFileRejectsNonTransactionalWrites) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("x");
  ins.record = ToBytes("v");
  auto* r = Op(client_, kDiscInsert, ins, /*transid=*/0);
  sim_.Run();
  EXPECT_TRUE(r->status.IsInvalidArgument());
}

TEST_F(DiscProcessTest, UnauditedFileAllowsDirectWrites) {
  DiscRequest ins;
  ins.file = "scratch";
  ins.key = ToBytes("x");
  ins.record = ToBytes("v");
  auto* r = Op(client_, kDiscInsert, ins, /*transid=*/0);
  sim_.Run();
  EXPECT_TRUE(r->status.ok());
  // No audit image was generated.
  EXPECT_EQ(trail_.record_count(), 0u);
}

TEST_F(DiscProcessTest, EntrySequencedAppendAssignsAndLocksKey) {
  DiscRequest app;
  app.file = "log";
  auto* r = Op(client_, kDiscInsert, app, Txn(9));
  sim_.Run();
  ASSERT_TRUE(r->status.ok());
  EXPECT_EQ(r->payload.size(), 8u);  // recnum key
  EXPECT_TRUE(disc_.primary->locks().Holds(Transid{1, 0, 9},
                                           LockKey{"log", r->payload}));
}

TEST_F(DiscProcessTest, LockedReadBlocksOtherWriter) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  EndTxn(Txn(1), DiscTxnState::kEnded);
  sim_.Run();

  // Txn 2 reads with lock.
  DiscRequest rd;
  rd.file = "acct";
  rd.key = ToBytes("a1");
  rd.lock = true;
  auto* r1 = Op(client_, kDiscRead, rd, Txn(2));
  sim_.Run();
  EXPECT_TRUE(r1->status.ok());

  // Txn 3's update parks behind the lock.
  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("999");
  os::CallOptions opt;
  opt.timeout = Seconds(30);
  auto* r2 = Op(client2_, kDiscUpdate, up, Txn(3), opt);
  sim_.RunFor(Millis(50));
  EXPECT_FALSE(r2->done);  // waiting

  // Commit txn 2: lock releases, txn 3 proceeds.
  EndTxn(Txn(2), DiscTxnState::kEnded);
  sim_.Run();
  ASSERT_TRUE(r2->done);
  EXPECT_TRUE(r2->status.ok());
  EXPECT_EQ(ToString(volume_.ReadRecord("acct", Slice("a1")).value), "999");
}

TEST_F(DiscProcessTest, LockWaitTimesOutForDeadlockResolution) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("1");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();

  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("2");
  up.lock_timeout = Millis(100);
  os::CallOptions opt;
  opt.timeout = Seconds(30);
  auto* r = Op(client2_, kDiscUpdate, up, Txn(2), opt);
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.IsTimeout());
  EXPECT_GT(sim_.GetStats().Counter("disc.lock_timeouts"), 0);
  // The value is unchanged.
  EXPECT_EQ(ToString(volume_.ReadRecord("acct", Slice("a1")).value), "1");
}

TEST_F(DiscProcessTest, AbortingTransactionRejectsNewWork) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("1");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  EndTxn(Txn(1), DiscTxnState::kAborting);
  sim_.Run();
  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("2");
  auto* r = Op(client_, kDiscUpdate, up, Txn(1));
  sim_.Run();
  EXPECT_TRUE(r->status.IsAborted());
}

TEST_F(DiscProcessTest, UndoCompensatesAndAbortReleasesLocks) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  EndTxn(Txn(1), DiscTxnState::kEnded);
  sim_.Run();

  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("999");
  Op(client_, kDiscUpdate, up, Txn(2));
  sim_.Run();
  EndTxn(Txn(2), DiscTxnState::kAborting);
  sim_.Run();

  // Backout: apply the compensating before-image.
  DiscRequest undo;
  undo.file = "acct";
  undo.key = ToBytes("a1");
  undo.record = ToBytes("100");  // before-image
  undo.undo_op = storage::MutationOp::kUpdate;
  auto* r = Op(client_, kDiscUndo, undo, Txn(2));
  sim_.Run();
  EXPECT_TRUE(r->status.ok());
  EXPECT_EQ(ToString(volume_.ReadRecord("acct", Slice("a1")).value), "100");

  // Undo is idempotent (a takeover may replay it).
  auto* r2 = Op(client_, kDiscUndo, undo, Txn(2));
  sim_.Run();
  EXPECT_TRUE(r2->status.ok());
  EXPECT_EQ(ToString(volume_.ReadRecord("acct", Slice("a1")).value), "100");

  EndTxn(Txn(2), DiscTxnState::kAborted);
  sim_.Run();
  EXPECT_EQ(disc_.primary->locks().held_count(), 0u);
}

TEST_F(DiscProcessTest, SeekAndAlternateKeyThroughDiscProcess) {
  storage::FileOptions opt;
  opt.schema.alternate_keys = {"site"};
  volume_.CreateFile("stock", storage::FileOrganization::kKeySequenced, opt);
  for (int i = 0; i < 3; ++i) {
    DiscRequest ins;
    ins.file = "stock";
    ins.key = ToBytes("s" + std::to_string(i));
    ins.record = storage::Record().Set("site", "cupertino").Encode();
    Op(client_, kDiscInsert, ins, /*transid=*/0);
  }
  sim_.Run();

  DiscRequest seek;
  seek.file = "stock";
  seek.key = ToBytes("s0");
  seek.inclusive = false;
  auto* r = Op(client_, kDiscSeek, seek, 0);
  sim_.Run();
  ASSERT_TRUE(r->status.ok());
  auto rep = SeekReply::Decode(Slice(r->payload));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(ToString(rep->key), "s1");

  DiscRequest alt;
  alt.file = "stock";
  alt.field = "site";
  alt.value = "cupertino";
  auto* r2 = Op(client_, kDiscReadAlt, alt, 0);
  sim_.Run();
  EXPECT_TRUE(r2->status.ok());
  EXPECT_FALSE(r2->payload.empty());
}

TEST_F(DiscProcessTest, BatchedScanReturnsOrderedEntries) {
  for (int i = 0; i < 10; ++i) {
    DiscRequest ins;
    ins.file = "scratch";
    ins.key = ToBytes("k" + std::to_string(i));
    ins.record = ToBytes("v" + std::to_string(i));
    Op(client_, kDiscInsert, ins, 0);
  }
  sim_.Run();

  DiscRequest scan;
  scan.file = "scratch";
  scan.inclusive = true;
  scan.max_records = 4;
  auto* r1 = Op(client_, kDiscScan, scan, 0);
  sim_.Run();
  ASSERT_TRUE(r1->status.ok());
  auto rep1 = ScanReply::Decode(Slice(r1->payload));
  ASSERT_TRUE(rep1.ok());
  ASSERT_EQ(rep1->entries.size(), 4u);
  EXPECT_FALSE(rep1->at_end);
  EXPECT_EQ(ToString(rep1->entries[0].key), "k0");
  EXPECT_EQ(ToString(rep1->entries[3].key), "k3");

  // Continue exclusively from the last key; a big batch drains the rest.
  DiscRequest scan2;
  scan2.file = "scratch";
  scan2.key = rep1->entries.back().key;
  scan2.inclusive = false;
  scan2.max_records = 100;
  auto* r2 = Op(client_, kDiscScan, scan2, 0);
  sim_.Run();
  auto rep2 = ScanReply::Decode(Slice(r2->payload));
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2->entries.size(), 6u);
  EXPECT_TRUE(rep2->at_end);
  EXPECT_EQ(ToString(rep2->entries.back().key), "k9");
}

TEST_F(DiscProcessTest, ScanOfEmptyFileReportsEnd) {
  volume_.CreateFile("empty", storage::FileOrganization::kKeySequenced);
  DiscRequest scan;
  scan.file = "empty";
  scan.inclusive = true;
  auto* r = Op(client_, kDiscScan, scan, 0);
  sim_.Run();
  ASSERT_TRUE(r->status.ok());
  auto rep = ScanReply::Decode(Slice(r->payload));
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->entries.empty());
  EXPECT_TRUE(rep->at_end);
}

TEST_F(DiscProcessTest, DiscRequestCodecRoundTrip) {
  DiscRequest req;
  req.file = "acct";
  req.key = ToBytes("k");
  req.record = ToBytes("rec");
  req.field = "site";
  req.value = "cupertino";
  req.lock = true;
  req.inclusive = false;
  req.undo_op = storage::MutationOp::kDelete;
  req.lock_timeout = Millis(123);
  req.max_records = 77;
  auto decoded = DiscRequest::Decode(Slice(req.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->file, "acct");
  EXPECT_EQ(ToString(decoded->key), "k");
  EXPECT_EQ(ToString(decoded->record), "rec");
  EXPECT_EQ(decoded->field, "site");
  EXPECT_EQ(decoded->value, "cupertino");
  EXPECT_TRUE(decoded->lock);
  EXPECT_FALSE(decoded->inclusive);
  EXPECT_EQ(decoded->undo_op, storage::MutationOp::kDelete);
  EXPECT_EQ(decoded->lock_timeout, Millis(123));
  EXPECT_EQ(decoded->max_records, 77u);
}

TEST_F(DiscProcessTest, TakeoverSuppressesDuplicateApplication) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  os::CallOptions opt;
  opt.timeout = Millis(50);
  opt.retries = 3;
  auto* r = Op(client_, kDiscInsert, ins, Txn(1), opt);
  // Let the request reach and be applied by the primary (sub-millisecond),
  // then kill the primary's CPU before its reply (300us base latency) —
  // strictly between apply and reply.
  sim_.RunFor(Micros(100));
  node_->FailCpu(0);
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.ok());  // answered from the mirrored reply cache
  EXPECT_GT(sim_.GetStats().Counter("disc.dedup_replays"), 0);
  // Exactly one record exists.
  EXPECT_EQ(volume_.Find("acct")->record_count(), 1u);
  // The new primary still tracks the lock.
  EXPECT_TRUE(node_->Find(node_->LookupName("$DATA1")) != nullptr);
  EXPECT_TRUE(disc_.backup->IsPrimary());
  EXPECT_TRUE(disc_.backup->locks().Holds(Transid{1, 0, 1},
                                          LockKey{"acct", ToBytes("a1")}));
}

TEST_F(DiscProcessTest, ZombieRequestForResolvedTransactionRejected) {
  // Regression: a retransmitted request carrying an already-resolved
  // transid (e.g. delivered after a partition heals) must not acquire locks
  // — they would leak forever since the release already happened.
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  EndTxn(Txn(1), DiscTxnState::kEnded);  // txn 1 fully resolved
  sim_.Run();
  EXPECT_EQ(disc_.primary->locks().held_count(), 0u);

  // The zombie arrives late, still stamped with txn 1.
  DiscRequest zombie;
  zombie.file = "acct";
  zombie.key = ToBytes("a1");
  zombie.lock = true;
  auto* r = Op(client2_, kDiscRead, zombie, Txn(1));
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.IsAborted());
  EXPECT_EQ(disc_.primary->locks().held_count(), 0u);  // nothing leaked
}

TEST_F(DiscProcessTest, ResolvedSetMirroredToBackup) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  EndTxn(Txn(1), DiscTxnState::kEnded);
  sim_.Run();
  node_->FailCpu(0);  // primary dies; backup must remember txn 1 is dead
  sim_.Run();
  ASSERT_TRUE(disc_.backup->IsPrimary());
  DiscRequest zombie;
  zombie.file = "acct";
  zombie.key = ToBytes("a1");
  zombie.lock = true;
  auto* r = Op(client2_, kDiscRead, zombie, Txn(1));
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.IsAborted());
  EXPECT_EQ(disc_.backup->locks().held_count(), 0u);
}

TEST_F(DiscProcessTest, TakeoverPreservesLockStateAcrossCommit) {
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("a1");
  ins.record = ToBytes("100");
  Op(client_, kDiscInsert, ins, Txn(1));
  sim_.Run();
  node_->FailCpu(0);  // primary dies holding txn 1's lock state
  sim_.Run();
  ASSERT_TRUE(disc_.backup->IsPrimary());
  // Another txn conflicts until txn 1 is released on the new primary.
  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("7");
  os::CallOptions opt;
  opt.timeout = Seconds(30);
  auto* r = Op(client2_, kDiscUpdate, up, Txn(2), opt);
  sim_.RunFor(Millis(50));
  EXPECT_FALSE(r->done);
  EndTxn(Txn(1), DiscTxnState::kEnded);
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.ok());
}

TEST_F(DiscProcessTest, StatusMessageTextReachesRequester) {
  // Regression: replies used to carry bare codes (Status(code, "")); the
  // human-readable text must survive the delayed reply path.
  DiscRequest rd;
  rd.file = "nofile";
  rd.key = ToBytes("k");
  auto* r = Op(client_, kDiscRead, rd, Txn(1));
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.IsNotFound());
  EXPECT_EQ(r->status.message(), "no file: nofile");
}

TEST_F(DiscProcessTest, StatusMessageTextSurvivesTakeoverReplay) {
  // The error text must also survive the mirrored reply cache: the backup
  // answers the retry after takeover with the full message.
  DiscRequest rd;
  rd.file = "nofile";
  rd.key = ToBytes("k");
  os::CallOptions opt;
  opt.timeout = Millis(50);
  opt.retries = 3;
  auto* r = Op(client_, kDiscRead, rd, Txn(1), opt);
  sim_.RunFor(Micros(100));  // applied by the primary, reply still pending
  node_->FailCpu(0);
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.IsNotFound());
  EXPECT_EQ(r->status.message(), "no file: nofile");
  EXPECT_GT(sim_.GetStats().Counter("disc.dedup_replays"), 0);
}

TEST_F(DiscProcessTest, LockTimeoutMessageNamesTheFile) {
  DiscRequest up;
  up.file = "acct";
  up.key = ToBytes("a1");
  up.record = ToBytes("1");
  Op(client_, kDiscInsert, up, Txn(1));
  sim_.Run();
  auto* r = Op(client2_, kDiscUpdate, up, Txn(2));
  sim_.Run();
  ASSERT_TRUE(r->done);
  EXPECT_TRUE(r->status.IsTimeout());
  EXPECT_EQ(r->status.message(), "lock wait timeout: acct");
}

// Builds a self-contained rig so checkpoint knobs can vary per test.
struct CoalesceRig {
  explicit CoalesceRig(SimDuration window)
      : sim(7), cluster(&sim), volume("$DATA9") {
    node = cluster.AddNode(1);
    EXPECT_TRUE(
        volume.CreateFile("acct", storage::FileOrganization::kKeySequenced).ok());
    DiscProcessConfig dcfg;
    dcfg.volume = &volume;
    dcfg.ckpt_coalesce_window = window;
    disc = os::SpawnPair<DiscProcess>(node, "$DATA9", 0, 1, dcfg);
    client = node->Spawn<TestClient>(2);
    sim.Run();
  }

  /// Runs `n` pipelined inserts under one transaction, then commits.
  void RunInserts(int n) {
    std::vector<TestClient::Outcome*> outcomes;
    for (int i = 0; i < n; ++i) {
      DiscRequest ins;
      ins.file = "acct";
      ins.key = ToBytes("k" + std::to_string(i));
      ins.record = ToBytes("v");
      outcomes.push_back(client->CallRaw(net::Address(1, "$DATA9"), kDiscInsert,
                                         ins.Encode(), Transid{1, 0, 9}.Pack(),
                                         {}));
    }
    sim.Run();
    for (auto* r : outcomes) EXPECT_TRUE(r->done && r->status.ok());
    TxnStateChange change;
    change.transid = Transid{1, 0, 9};
    change.state = DiscTxnState::kEnded;
    client->SendRaw(net::Address(1, "$DATA9"), kDiscTxnStateChange,
                    change.Encode());
    sim.Run();
  }

  int64_t Messages() { return sim.GetStats().Counter("disc.ckpt_messages"); }
  int64_t Entries() { return sim.GetStats().Counter("disc.ckpt_entries"); }

  sim::Simulation sim;
  os::Cluster cluster;
  os::Node* node;
  storage::Volume volume;
  os::PairHandles<DiscProcess> disc;
  TestClient* client;
};

TEST_F(DiscProcessTest, CheckpointCoalescingCutsMessagesNotEntries) {
  CoalesceRig per_op(0);
  CoalesceRig coalesced(Millis(5));
  per_op.RunInserts(20);
  coalesced.RunInserts(20);

  // Same state deltas flow to the backup either way...
  EXPECT_EQ(per_op.Entries(), coalesced.Entries());
  EXPECT_GT(per_op.Entries(), 0);
  // ...but the coalescing window piggybacks them into far fewer messages.
  EXPECT_GT(per_op.Messages(), 0);
  EXPECT_LE(coalesced.Messages() * 2, per_op.Messages());

  // The coalesced backup is fully synchronized once the window flushes:
  // after commit it holds no locks, same as the per-op backup.
  EXPECT_EQ(per_op.disc.backup->locks().held_count(), 0u);
  EXPECT_EQ(coalesced.disc.backup->locks().held_count(), 0u);
}

TEST_F(DiscProcessTest, CoalescedCheckpointsSurviveTakeover) {
  // With a window pending, a takeover after the flush timer fires must leave
  // the backup with exactly the primary's lock state.
  CoalesceRig rig(Millis(2));
  DiscRequest ins;
  ins.file = "acct";
  ins.key = ToBytes("held");
  ins.record = ToBytes("v");
  auto* r = rig.client->CallRaw(net::Address(1, "$DATA9"), kDiscInsert,
                                ins.Encode(), Transid{1, 0, 9}.Pack(), {});
  rig.sim.Run();  // quiesce: the coalescing window has flushed
  ASSERT_TRUE(r->done && r->status.ok());
  rig.node->FailCpu(0);
  rig.sim.Run();
  ASSERT_TRUE(rig.disc.backup->IsPrimary());
  EXPECT_TRUE(rig.disc.backup->locks().Holds(Transid{1, 0, 9},
                                             LockKey{"acct", ToBytes("held")}));
}

TEST_F(DiscProcessTest, DefaultKnobsSameSeedTracesAreIdentical) {
  // Two identical rigs, same seed, default knobs: the per-transaction trace
  // dumps must be byte-identical. Guards the lock-table and cache rewrites
  // against any hash-iteration-order leak into grant order or timing.
  auto run = [](sim::Simulation* sim_out, std::string* dump) {
    CoalesceRig rig(0);
    rig.RunInserts(8);
    (void)sim_out;
    *dump = rig.sim.GetTrace().Dump(Transid{1, 0, 9}.Pack());
  };
  std::string d1, d2;
  run(nullptr, &d1);
  run(nullptr, &d2);
  EXPECT_FALSE(d1.empty());
  EXPECT_EQ(d1, d2);
}

}  // namespace
}  // namespace encompass::discprocess
