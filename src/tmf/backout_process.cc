#include "tmf/backout_process.h"

#include <algorithm>
#include <memory>

#include "audit/audit_process.h"
#include "common/logging.h"
#include "discprocess/disc_protocol.h"

namespace encompass::tmf {

void BackoutProcess::OnRequest(const net::Message& msg) {
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup backout process"));
    return;
  }
  if (msg.tag != kBackoutTxn) {
    Reply(msg, Status::InvalidArgument("unknown backout tag"));
    return;
  }
  auto t = DecodeTransidPayload(Slice(msg.payload));
  if (!t.ok()) {
    Reply(msg, t.status());
    return;
  }
  RunBackout(msg, *t);
}

void BackoutProcess::OnPairAttach() {
  m_requests_ = stats().RegisterCounter("backout.requests");
  m_undos_ = stats().RegisterCounter("backout.undos");
}

void BackoutProcess::RunBackout(const net::Message& request,
                                const Transid& transid) {
  stats().Incr(m_requests_);
  auto collected = std::make_shared<std::vector<audit::AuditRecord>>();
  auto pending = std::make_shared<int>(
      static_cast<int>(config_.audit_processes.size()));
  auto failed = std::make_shared<bool>(false);
  net::Message req = request;

  auto apply_undos = [this, req, collected, failed, transid]() {
    if (*failed) {
      Reply(req, Status::IoError("could not fetch audit images"));
      return;
    }
    // Undo newest-first so multiple updates of one record unwind correctly.
    std::sort(collected->begin(), collected->end(),
              [](const audit::AuditRecord& a, const audit::AuditRecord& b) {
                return a.lsn > b.lsn;
              });
    auto undo_pending = std::make_shared<int>(static_cast<int>(collected->size()));
    auto undo_failed = std::make_shared<bool>(false);
    if (*undo_pending == 0) {
      Reply(req, Status::Ok());
      return;
    }
    // The undos are issued sequentially (each after the previous reply) to
    // preserve per-record ordering across volumes deterministically.
    auto issue = std::make_shared<std::function<void(size_t)>>();
    *issue = [this, req, collected, undo_failed, transid, issue](size_t idx) {
      if (idx >= collected->size()) {
        Reply(req, *undo_failed
                       ? Status::IoError("undo failed")
                       : Status::Ok());
        return;
      }
      const audit::AuditRecord& rec = (*collected)[idx];
      discprocess::DiscRequest undo;
      undo.file = rec.file;
      undo.key = rec.key;
      undo.record = rec.before;
      undo.undo_op = rec.op;
      os::CallOptions opt;
      opt.timeout = config_.undo_timeout;
      opt.retries = 2;
      uint64_t saved = current_transid();
      set_current_transid(transid.Pack());
      stats().Incr(m_undos_);
      Call(net::Address(node()->id(), rec.volume), discprocess::kDiscUndo,
           undo.Encode(),
           [undo_failed, issue, idx](const Status& s, const net::Message&) {
             if (!s.ok()) *undo_failed = true;
             (*issue)(idx + 1);
           },
           opt);
      set_current_transid(saved);
    };
    (*issue)(0);
  };

  if (*pending == 0) {
    apply_undos();
    return;
  }
  for (const auto& name : config_.audit_processes) {
    os::CallOptions opt;
    opt.timeout = config_.fetch_timeout;
    opt.retries = 2;
    Bytes payload;
    PutFixed64(&payload, transid.Pack());
    Call(net::Address(node()->id(), name), audit::kAuditFetchTxn,
         std::move(payload),
         [collected, pending, failed, apply_undos](const Status& s,
                                                   const net::Message& m) {
           if (!s.ok()) {
             *failed = true;
           } else {
             auto batch = audit::DecodeAuditBatch(Slice(m.payload));
             if (batch.ok()) {
               collected->insert(collected->end(), batch->begin(), batch->end());
             } else {
               *failed = true;
             }
           }
           if (--*pending == 0) apply_undos();
         },
         opt);
  }
}

}  // namespace encompass::tmf
