// Binary serialization primitives: little-endian fixed ints, LEB128 varints,
// and length-prefixed strings. Used for audit records, checkpoint deltas,
// message payloads, and on-disc block layouts.

#ifndef ENCOMPASS_COMMON_CODING_H_
#define ENCOMPASS_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace encompass {

// ---------------------------------------------------------------------------
// Encoders: append to a Bytes buffer.
// ---------------------------------------------------------------------------

void PutFixed8(Bytes* dst, uint8_t v);
void PutFixed16(Bytes* dst, uint16_t v);
void PutFixed32(Bytes* dst, uint32_t v);
void PutFixed64(Bytes* dst, uint64_t v);
void PutVarint32(Bytes* dst, uint32_t v);
void PutVarint64(Bytes* dst, uint64_t v);
/// varint length followed by raw bytes.
void PutLengthPrefixed(Bytes* dst, const Slice& value);

// ---------------------------------------------------------------------------
// Decoders: consume from the front of a Slice; return false on underflow or
// malformed input (the Slice is left in an unspecified position on failure).
// ---------------------------------------------------------------------------

bool GetFixed8(Slice* input, uint8_t* v);
bool GetFixed16(Slice* input, uint16_t* v);
bool GetFixed32(Slice* input, uint32_t* v);
bool GetFixed64(Slice* input, uint64_t* v);
bool GetVarint32(Slice* input, uint32_t* v);
bool GetVarint64(Slice* input, uint64_t* v);
bool GetLengthPrefixed(Slice* input, Slice* value);
/// Copying form of GetLengthPrefixed.
bool GetLengthPrefixedBytes(Slice* input, Bytes* value);
bool GetLengthPrefixedString(Slice* input, std::string* value);

/// Convenience: Corruption status when a decode fails.
inline Status DecodeError(const char* what) {
  return Status::Corruption(std::string("decode failed: ") + what);
}

}  // namespace encompass

#endif  // ENCOMPASS_COMMON_CODING_H_
