# Empty compiler generated dependencies file for manufacturing_network.
# This may be replaced when dependencies are built.
