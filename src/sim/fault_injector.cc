#include "sim/fault_injector.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/exec_context.h"

namespace encompass::sim {

void FaultInjector::InjectAt(SimTime when, std::string description,
                             std::function<void()> action) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++scheduled_;
  }
  // Fault actions mutate cross-node state (crash a node, cut a link), so
  // they always run on the global loop, which executes only while every
  // node loop is paused — and before any node's events at the same instant.
  sim_->AtOn(0, when, [this, description = std::move(description),
                       action = std::move(action)]() {
    LOG_INFO << "fault @" << sim_->Now() << "us: " << description;
    // Count the firing and journal it *before* running the action: the
    // action may re-entrantly schedule (or Note) further faults, and the
    // books must already reflect this firing when it does.
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++fired_;
    }
    Append(description);
    action();
  });
}

void FaultInjector::InjectAfter(SimDuration delay, std::string description,
                                std::function<void()> action) {
  InjectAt(sim_->Now() + delay, std::move(description), std::move(action));
}

void FaultInjector::Note(std::string description) {
  Append(std::move(description));
}

void FaultInjector::Append(std::string description) {
  // Stamp the entry with the writing event's total-order key so journal()
  // can present one canonical order on every engine. Outside event
  // execution (setup code), fall back to a time-only key, which sorts
  // before any event's entries at the same instant.
  const internal::ExecContext* ec = internal::Exec();
  const EventKey key = (ec != nullptr && ec->sim == sim_)
                           ? ec->key
                           : EventKey{sim_->Now(), 0, 0};
  std::lock_guard<std::mutex> lk(mu_);
  entries_.push_back(
      Entry{key, static_cast<uint64_t>(entries_.size()),
            FaultEvent{sim_->Now(), std::move(description)}});
}

const std::vector<FaultEvent>& FaultInjector::journal() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Keys are unique per event; the ordinal only orders the entries one
  // event wrote (insertion order on a single thread, so deterministic).
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->key < b->key) return true;
    if (b->key < a->key) return false;
    return a->ordinal < b->ordinal;
  });
  journal_.clear();
  journal_.reserve(sorted.size());
  for (const Entry* e : sorted) journal_.push_back(e->e);
  return journal_;
}

}  // namespace encompass::sim
