// Tests for the Deployment bootstrap and the ServiceGuardian repair layer:
// backup re-attachment after takeover, pair respawn after double failure,
// node crash/restart cycles, and configuration errors.

#include <gtest/gtest.h>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "test_util.h"
#include "tmf/file_system.h"

namespace encompass::app {
namespace {

using apps::banking::SeedAccounts;
using testutil::TestClient;

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : sim_(61), deploy_(&sim_) {
    NodeSpec spec;
    spec.id = 1;
    spec.node_config.num_cpus = 4;
    spec.volumes = {VolumeSpec{"$DATA1", {FileSpec{"acct"}}, {}}};
    node_ = deploy_.AddNode(spec);
    EXPECT_TRUE(deploy_.DefineFile("acct", 1, "$DATA1").ok());
    sim_.Run();
  }

  /// Counts live members of the named pair (primary found via the name,
  /// backup via its peer pointer).
  int PairMembers(const std::string& name) {
    net::Pid pid = node_->node()->LookupName(name);
    if (pid == 0) return 0;
    auto* p = dynamic_cast<os::PairedProcess*>(node_->node()->Find(pid));
    if (p == nullptr) return 0;
    return p->HasBackup() ? 2 : 1;
  }

  sim::Simulation sim_;
  Deployment deploy_;
  NodeDeployment* node_;
};

TEST_F(DeploymentTest, ServicesComeUpAsPairs) {
  for (const char* name : {"$AUD.$DATA1", "$DATA1", "$BACKOUT", "$TMP"}) {
    EXPECT_EQ(PairMembers(name), 2) << name;
  }
}

TEST_F(DeploymentTest, GuardianReattachesBackupAfterTakeover) {
  // The DISCPROCESS pair lives on CPUs (1,2); kill the primary's CPU.
  node_->node()->FailCpu(1);
  sim_.RunFor(Millis(10));
  EXPECT_EQ(PairMembers("$DATA1"), 1);  // exposed after takeover
  node_->node()->ReloadCpu(1);
  sim_.RunFor(Millis(200));
  EXPECT_EQ(PairMembers("$DATA1"), 2);  // guardian restored redundancy
  EXPECT_GT(sim_.GetStats().Counter("deploy.backup_reattached"), 0);
}

TEST_F(DeploymentTest, GuardianReattachesEvenWithoutReload) {
  // Three CPUs remain after the failure — the guardian can restore the
  // pair immediately on a surviving CPU.
  node_->node()->FailCpu(2);  // disc backup's CPU
  sim_.RunFor(Millis(200));
  EXPECT_EQ(PairMembers("$DATA1"), 2);
}

TEST_F(DeploymentTest, GuardianRespawnsFullyDeadPair) {
  // Kill both CPUs of the TMP pair (3 and 0) in quick succession — a
  // multiple-module failure. The guardian respawns a fresh pair.
  node_->node()->FailCpu(3);
  node_->node()->FailCpu(0);
  sim_.RunFor(Millis(500));
  EXPECT_GE(PairMembers("$TMP"), 1);
  EXPECT_GT(sim_.GetStats().Counter("deploy.pair_respawns"), 0);
  // The respawned TMP serves BEGINs again.
  auto* client = node_->node()->Spawn<TestClient>(1);
  sim_.RunFor(Millis(10));
  auto* begin = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  sim_.Run();
  EXPECT_TRUE(begin->done && begin->status.ok());
}

TEST_F(DeploymentTest, TransactionsWorkAfterRepeatedFailReloadCycles) {
  SeedAccounts(node_->storage().volumes.at("$DATA1").get(), "acct", 5, 100);
  auto* client = node_->node()->Spawn<TestClient>(2);
  tmf::FileSystem fs(client, &deploy_.catalog());
  sim_.Run();

  // The client itself lives on CPU 2; cycle failures over the other CPUs
  // (a real terminal user would be on a different node anyway).
  const int cycle[] = {0, 1, 3, 0};
  for (int round = 0; round < 4; ++round) {
    int cpu = cycle[round];
    node_->node()->FailCpu(cpu);
    sim_.RunFor(Millis(300));
    node_->node()->ReloadCpu(cpu);
    sim_.RunFor(Millis(300));

    auto* begin = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
    sim_.Run();
    ASSERT_TRUE(begin->done && begin->status.ok()) << "round " << round;
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    bool ok = false;
    client->set_current_transid(transid->Pack());
    fs.Update("acct", Slice(apps::banking::AccountKey(0)),
              Slice(storage::Record()
                        .Set("balance", std::to_string(round))
                        .Encode()),
              [&ok](const Status& s, const Bytes&) { ok = s.ok(); });
    client->set_current_transid(0);
    sim_.Run();
    ASSERT_TRUE(ok) << "round " << round;
    auto* end = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(*transid),
                                transid->Pack());
    sim_.Run();
    ASSERT_TRUE(end->done && end->status.ok()) << "round " << round;
  }
}

TEST_F(DeploymentTest, CrashDropsVolatileRestartRespawns) {
  auto* vol = node_->storage().volumes.at("$DATA1").get();
  vol->Mutate("acct", storage::MutationOp::kInsert, Slice("k"), Slice("flushed"));
  vol->Flush();
  vol->Mutate("acct", storage::MutationOp::kUpdate, Slice("k"), Slice("volatile"));
  deploy_.CrashNode(1);
  sim_.RunFor(Millis(100));
  EXPECT_EQ(ToString(vol->ReadRecord("acct", Slice("k")).value), "flushed");
  EXPECT_TRUE(node_->node()->Dead());
  deploy_.RestartNode(1);
  sim_.RunFor(Millis(100));
  EXPECT_EQ(PairMembers("$TMP"), 2);
  EXPECT_EQ(PairMembers("$DATA1"), 2);
}

TEST_F(DeploymentTest, DefineFileValidation) {
  EXPECT_TRUE(deploy_.DefineFile("nope", 1, "$DATA1").IsNotFound());
  EXPECT_TRUE(deploy_.DefineFile("acct", 9, "$DATA1").IsNotFound());
  EXPECT_TRUE(deploy_.DefineFile("acct", 1, "$NOPE").IsNotFound());
  EXPECT_TRUE(deploy_.DefineFile("acct", 1, "$DATA1").IsAlreadyExists());
}

TEST_F(DeploymentTest, TrailNamingConvention) {
  EXPECT_EQ(NodeDeployment::TrailName("$DATA1"), "$DATA1.AT");
  EXPECT_EQ(node_->storage().trails.count("$DATA1.AT"), 1u);
}

}  // namespace
}  // namespace encompass::app
