# Empty compiler generated dependencies file for encompass_discprocess.
# This may be replaced when dependencies are built.
