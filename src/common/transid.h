// Transid: the network-wide transaction identifier defined by the paper —
// "a sequence number, qualified by the number of the processor in which
// BEGIN-TRANSACTION was called, qualified by the number of the network node
// which originated the transaction" (the transaction's *home* node).

#ifndef ENCOMPASS_COMMON_TRANSID_H_
#define ENCOMPASS_COMMON_TRANSID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace encompass {

/// Globally unique transaction identifier. seq == 0 means "no transaction".
struct Transid {
  uint16_t home_node = 0;  ///< network node that executed BEGIN-TRANSACTION
  uint8_t cpu = 0;         ///< processor within the home node
  uint64_t seq = 0;        ///< per-cpu sequence number (0 = invalid)

  bool valid() const { return seq != 0; }

  /// Packs into 64 bits: [16 node][8 cpu][40 seq]. seq must fit in 40 bits.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(home_node) << 48) |
           (static_cast<uint64_t>(cpu) << 40) | (seq & 0xffffffffffULL);
  }

  static Transid Unpack(uint64_t packed) {
    Transid t;
    t.home_node = static_cast<uint16_t>(packed >> 48);
    t.cpu = static_cast<uint8_t>(packed >> 40);
    t.seq = packed & 0xffffffffffULL;
    return t;
  }

  std::string ToString() const {
    if (!valid()) return "txn(none)";
    return "txn(" + std::to_string(home_node) + "." + std::to_string(cpu) + "." +
           std::to_string(seq) + ")";
  }

  friend bool operator==(const Transid& a, const Transid& b) {
    return a.Pack() == b.Pack();
  }
  friend bool operator!=(const Transid& a, const Transid& b) { return !(a == b); }
  friend bool operator<(const Transid& a, const Transid& b) {
    return a.Pack() < b.Pack();
  }
};

}  // namespace encompass

template <>
struct std::hash<encompass::Transid> {
  size_t operator()(const encompass::Transid& t) const noexcept {
    return std::hash<uint64_t>()(t.Pack());
  }
};

#endif  // ENCOMPASS_COMMON_TRANSID_H_
