# Empty dependencies file for encompass_baseline.
# This may be replaced when dependencies are built.
