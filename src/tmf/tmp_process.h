// TmpProcess: the Transaction Monitor Process — "a process-pair which is
// configured for each network node that participates in the distributed
// data base". It implements:
//   * transid generation at BEGIN-TRANSACTION,
//   * the per-node transaction state table with Figure-3 transitions,
//     broadcast (accounted per alive CPU) within the node,
//   * the abbreviated single-node two-phase commit (force audit, write the
//     commit record to the Monitor Audit Trail, release locks),
//   * the distributed commit protocol: remote-transaction-begin and phase
//     one as critical-response messages; phase two and abort as
//     safe-delivery messages retried until deliverable,
//   * unilateral abort on communication loss, in-doubt lock retention after
//     an affirmative phase-1 reply, and the manual disposition override,
//   * coordination of the BACKOUTPROCESS for transaction backout.

#ifndef ENCOMPASS_TMF_TMP_PROCESS_H_
#define ENCOMPASS_TMF_TMP_PROCESS_H_

#include <list>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit_trail.h"
#include "os/process_pair.h"
#include "tmf/commit_acceptor.h"
#include "tmf/tmf_protocol.h"
#include "tmf/transaction_state.h"

namespace encompass::tmf {

/// Which protocol fixes the commit point of a DISTRIBUTED transaction.
/// Single-node transactions always commit through the home MAT force —
/// they have no in-doubt window to shrink.
enum class CommitProtocol : uint8_t {
  kTwoPhase = 0,  ///< the paper's 2PC: commit point = home MAT force
  kPaxos = 1,     ///< Paxos Commit: commit point = majority acceptor accept
};

/// Static configuration of one node's TMP.
struct TmpConfig {
  std::vector<std::string> disc_processes;   ///< local DISCPROCESS names
  std::vector<std::string> audit_processes;  ///< local AUDITPROCESS names
  std::string backout_process = "$BACKOUT";  ///< local BACKOUTPROCESS name
  audit::MonitorAuditTrail* monitor_trail = nullptr;  ///< durable, per node
  SimDuration mat_force_latency = Millis(8);   ///< commit-record force cost
  /// Group commit for the commit-point force: how long the first committer
  /// of a batch waits for company before the physical MAT write starts.
  /// 0 (default) starts immediately; commits arriving while a write is in
  /// flight still coalesce into the next write either way.
  SimDuration mat_group_commit_window = 0;
  SimDuration phase1_timeout = Seconds(2);     ///< critical-response deadline
  SimDuration force_timeout = Seconds(2);      ///< local audit force deadline
  SimDuration safe_retry_interval = Millis(500);  ///< safe-delivery pacing
  /// Per-attempt deadline of one safe-delivery call (the queue as a whole
  /// retries forever; this only bounds how long a single attempt waits).
  SimDuration safe_call_timeout = Seconds(2);
  SimDuration backout_timeout = Seconds(5);
  /// Per-attempt deadline and retry budget for the retried DISCPROCESS
  /// state-change notifications (phase 2 / abort lock release).
  SimDuration disc_notify_timeout = Millis(500);
  int disc_notify_retries = 6;
  /// How often a participant holding in-doubt (ending, non-home)
  /// transactions queries the home TMP for their disposition. Recovers
  /// in-doubt locks after the home TMP lost its volatile state (both pair
  /// members died and the guardian respawned it fresh): the home then
  /// answers from its durable MAT — or presumed abort. 0 (default)
  /// disables the timer.
  SimDuration indoubt_resolve_interval = 0;
  /// A transaction still in "active" state this long after BEGIN is
  /// presumed abandoned (its requester died and the abort request was
  /// lost) and is automatically aborted so its locks release. 0 (default)
  /// disables the timer; production deployments should set it.
  SimDuration auto_abort_timeout = 0;
  /// Floor for the transid sequence counter of a FRESH TMP incarnation —
  /// the paper's crash-count analogue. Takeover within a pair continues the
  /// checkpointed counter, but after a total node failure the respawned TMP
  /// has no volatile state: without a floor it would restart at 1 and REUSE
  /// packed transids of the previous incarnation, corrupting every durable
  /// structure keyed by transid (the first-completion-wins MAT, audit
  /// classification during ROLLFORWARD). Deployments derive this from a
  /// durable per-node restart count, shifted clear of any plausible
  /// single-incarnation sequence (seq is 40 bits; incarnation << 32 leaves
  /// 4G transactions per incarnation).
  uint64_t seq_base = 0;
  /// Commit protocol for distributed transactions. Under kPaxos the home
  /// replicates its decision to the `acceptor_nodes` CommitAcceptor pairs
  /// before answering the client; in-doubt participants and recovering
  /// nodes may then learn the outcome from any live acceptor majority
  /// instead of waiting for the home to return.
  CommitProtocol commit_protocol = CommitProtocol::kTwoPhase;
  /// 2F+1: how many acceptors a paxos deployment registers (majority =
  /// F+1). Deployments place them on nodes 1..commit_replication.
  int commit_replication = 3;
  std::vector<net::NodeId> acceptor_nodes;  ///< where $ACCEPT pairs run
  std::string acceptor_process = "$ACCEPT";
  SimDuration paxos_round_timeout = Seconds(2);    ///< per acceptor call
  SimDuration paxos_retry_interval = Millis(200);  ///< pacing between rounds
  /// The paper's F+1-message fast path: every participant sends its
  /// phase-2a prepared-vote straight to the acceptors (a co-located
  /// acceptor makes that a local forced write, not a network message) and
  /// the home's commit point becomes its tally of forced-vote acks — one
  /// WAN delay instead of two. Requires `acceptor_endpoints`. Off by
  /// default so pre-existing deployments keep byte-identical traces.
  bool paxos_fast_path = false;
  /// Fast-path acceptor placement: (node, pair name) of every $ACCEPT.<k>
  /// pair. A node may host several pairs, so commit_replication = 2F+1
  /// works on clusters smaller than 2F+1. Order defines each pair's tally
  /// bit (index k). Non-empty overrides `acceptor_nodes` everywhere.
  std::vector<std::pair<net::NodeId, std::string>> acceptor_endpoints;
  /// Fast path: the $ACCEPT.<k> logs that live on this TMP's own node,
  /// wired by the deployment (`index` is the pair's tally bit k). The logs
  /// sit in the same durable NodeStorage the acceptor pairs write, so the
  /// TMP can mutate them directly — deposit a child's phase-1 vote
  /// (DepositChildVote) or seal decided instances the moment the
  /// disposition lands locally (ReclaimLocalAcceptors) — as plain function
  /// calls inside events it already runs: no messages, no new events, and
  /// therefore byte-identical scheduling across the sequential and
  /// parallel engines by construction.
  struct ColocatedAcceptor {
    size_t index = 0;
    CommitAcceptorLog* log = nullptr;
  };
  std::vector<ColocatedAcceptor> colocated_acceptors;
  /// How long the home batches decided-instance reclamations before
  /// flushing kTmfPaxosReclaim to the acceptors that actually hold voter
  /// instances (fast path). Longer batching means fewer reclaim messages
  /// at the price of a higher acceptor-log peak.
  SimDuration paxos_reclaim_interval = Millis(250);
  /// Orphan-sweep cadence handed to fast-path CommitAcceptor pairs by the
  /// deployment (0 disables the sweep).
  SimDuration acceptor_sweep_interval = Seconds(1);
  /// Record how long non-home participants keep locks in-doubt (the
  /// `tmf.indoubt_hold_us` histogram). Off by default so deployments that
  /// don't ask for it keep byte-identical stats snapshots; the chaos
  /// campaign turns it on for both protocols to compare blocked-lock time.
  bool track_indoubt_hold = false;
  /// Record END-TRANSACTION-to-commit-point latency at the home TMP (the
  /// `tmf.commit_latency_us` histogram). Off by default for the same
  /// byte-identical-snapshot reason as `track_indoubt_hold`; the chaos
  /// campaign and BENCH_e12 turn it on to price Paxos Commit's extra
  /// acceptor round trip against 2PC's MAT force.
  bool track_commit_latency = false;
};

/// The TMP pair.
class TmpProcess : public os::PairedProcess {
 public:
  explicit TmpProcess(TmpConfig config) : config_(std::move(config)) {}

  std::string DebugName() const override { return pair_name() + "/tmp"; }

  /// Number of transactions currently tracked (tests/benches).
  size_t ActiveTransactionCount() const { return txns_.size(); }

  /// Participants on this node still in-doubt (kEnding) behind `home`.
  /// The chaos campaign sums this cluster-wide at the instant a crashed
  /// home returns: 2PC strands these for the whole outage, Paxos Commit
  /// resolves them against the acceptor majority while the home is down.
  size_t IndoubtParticipantsOf(net::NodeId home) const {
    size_t n = 0;
    for (const auto& [t, txn] : txns_) {
      if (!txn.is_home && txn.state == TxnState::kEnding &&
          t.home_node == home) {
        ++n;
      }
    }
    return n;
  }
  /// State of a tracked transaction; false if unknown.
  bool GetTxnState(const Transid& t, TxnState* state) const;
  /// Pending safe-delivery messages (held for unreachable nodes).
  size_t PendingSafeDeliveries() const { return safe_queue_.size(); }
  /// Snapshot of every tracked transaction (also the kTmfListTxns payload);
  /// tests and campaign diagnostics use this to name what failed to drain.
  std::vector<TxnListEntry> ListTransactions() const;

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;
  void OnCheckpoint(const Slice& delta) override;
  void OnTakeover() override;
  void OnBackupAttached() override;
  void OnNodeUp(net::NodeId peer) override;
  void OnNodeDown(net::NodeId peer) override;

 private:
  struct TxnEntry {
    Transid transid;
    TxnState state = TxnState::kActive;
    bool is_home = false;
    net::NodeId parent = 0;            ///< who introduced the transid to us
    std::set<net::NodeId> children;    ///< nodes we directly transmitted to
    // Pending client reply (END-/ABORT-TRANSACTION caller), if any.
    net::ProcessId client;
    uint64_t client_req = 0;
    uint32_t client_tag = 0;
    // Commit coordination (primary-only, not checkpointed: a takeover
    // restarts the phase).
    int pending_acks = 0;
    bool phase_failed = false;
    // Paxos Commit coordination (volatile, like pending_acks).
    uint32_t paxos_attempt = 0;        ///< next ballot attempt to run
    bool paxos_round_in_flight = false;
    bool resolve_in_flight = false;    ///< outstanding in-doubt probe to home
    uint32_t home_ballot = 0;  ///< ballot piggybacked on phase 1 (non-home)
    /// Fast path, home only: per-voter bitmask of acceptor indices whose
    /// forced-vote acks arrived. Volatile like pending_acks — a takeover
    /// re-runs phase 1, votes replay idempotently, acks re-arrive.
    std::map<uint16_t, uint32_t> vote_acks;
    /// Fast path, home only: the fallback round is armed (phase 1 finished
    /// but the ack tally had not fired yet).
    uint64_t paxos_fallback_timer = 0;
    // When this entry entered kEnding. Non-home: feeds tmf.indoubt_hold_us
    // when the in-doubt window closes. Home: feeds tmf.commit_latency_us at
    // the commit point. Volatile: a takeover restarts the clock,
    // undercounting rather than inventing time.
    SimTime indoubt_since = 0;
  };

  // -- Verb handlers ----------------------------------------------------------
  void HandleBegin(const net::Message& msg);
  void HandleEnd(const net::Message& msg);
  void HandleAbort(const net::Message& msg);
  void HandleEnsureRemote(const net::Message& msg);
  void HandleRemoteBegin(const net::Message& msg);
  void HandlePhase1(const net::Message& msg);
  void HandlePhase2(const net::Message& msg);
  void HandleAbortTxn(const net::Message& msg);
  void HandleStatus(const net::Message& msg);
  void HandleForceDisposition(const net::Message& msg);
  /// kTmfResolveTxn: disposition query from a recovering node's ROLLFORWARD
  /// or a live in-doubt participant. As the home TMP this may decide the
  /// outcome (presumed abort); elsewhere it only reports the local MAT.
  void HandleResolveTxn(const net::Message& msg);

  // -- Commit machinery ---------------------------------------------------------
  /// Runs phase 1 (force local audit + critical-response to children), then
  /// `done(ok)`.
  void RunPhase1(TxnEntry* txn, std::function<void(bool)> done);
  /// Commit decided: write the MAT record, release locks, propagate phase 2.
  /// Concurrent committers share one physical MAT write (group commit).
  void CompleteCommit(const Transid& transid);
  /// Starts the physical MAT write for every transaction in mat_waiting_.
  void StartMatWrite();
  /// Schedules the next MAT write cycle (honouring the batching window).
  void ArmMatWrite();
  /// The commit record of `transid` is durable: release locks, propagate
  /// phase 2, answer the client.
  void CommitPointReached(const Transid& transid);
  /// A remote decision (phase 2 or a resolved in-doubt query) says the
  /// transaction committed: record it in the MAT, release locks, propagate
  /// phase 2 to our children, drop the entry. Idempotent.
  void ApplyRemoteCommit(const Transid& transid, TxnEntry* txn);
  /// Abort decided: mark aborting, back out, release, propagate abort.
  void StartAbort(const Transid& transid, const std::string& reason);
  void FinishAbort(const Transid& transid);
  void ReplyToClient(TxnEntry* txn, const Status& status, Bytes payload = {});
  void DropTxn(const Transid& transid);
  /// Transition with Figure-3 validation, broadcast accounting, checkpoint.
  void SetState(TxnEntry* txn, TxnState to);

  // -- Safe delivery --------------------------------------------------------------
  void QueueSafeDelivery(net::NodeId dest, uint32_t tag, const Transid& transid);
  void TrySafeDeliveries();

  // -- In-doubt resolution ----------------------------------------------------------
  /// Periodic timer (indoubt_resolve_interval) re-armed on both pair
  /// members; the tick body runs on the primary only.
  void ArmIndoubtResolve();
  /// Queries the home TMP of every in-doubt (ending, non-home) transaction.
  void ResolveIndoubts();

  // -- Paxos Commit -----------------------------------------------------------------
  /// True when `txn`'s commit point is replicated: paxos deployments
  /// replicate distributed home transactions only.
  bool PaxosEnabledFor(const TxnEntry& txn) const;
  PaxosRoundConfig PaxosConfig() const;
  /// Home side: replicate the commit decision; on the majority accept
  /// (the commit point) fall into CommitPointReached.
  void StartPaxosCommit(const Transid& transid);
  /// Participant side: the home is unreachable — learn (or fix, by
  /// proposing abort at a usurping ballot) the outcome from the acceptors.
  /// Escalates a stuck in-doubt participant to the acceptor group, but only
  /// after it has been in-doubt for a full resolve interval — younger
  /// entries are healthy commits mid-flight that a usurping ballot would
  /// needlessly abort. No-op under 2PC.
  void MaybePaxosEscalate(const Transid& transid, TxnEntry* txn);
  void StartPaxosResolve(const Transid& transid);
  /// Respawned-home side: this TMP no longer tracks `t` and its MAT has no
  /// record, but under paxos the decision may live at the acceptors. Runs
  /// an abort-proposing round and seals whatever is chosen into the MAT, so
  /// presumed abort never contradicts a majority-accepted commit.
  void SealDecision(const Transid& t);

  // -- Paxos Commit fast path ---------------------------------------------------------
  /// True when `txn` commits through the F+1-message fast path (votes go
  /// straight to the acceptors; the commit point is the home's ack tally).
  bool FastPathFor(const TxnEntry& txn) const;
  /// Sends this node's prepared-vote for `txn` one-way to its vote
  /// targets. Home: ballot (0, home) carrying the direct-participant set.
  /// Child: the home ballot that rode phase 1, skipping home-node targets
  /// — the home deposits the child's vote there itself (see
  /// DepositChildVote), so the child's affirmative phase-1 reply is the
  /// only cross-node message its vote costs.
  void CastVote(TxnEntry* txn);
  /// A child's affirmative phase-1 reply IS its prepared-vote: the vote's
  /// bytes are deterministic in (transid, home ballot, voter), so the home
  /// writes it straight into its co-located acceptor logs (the shared
  /// durable NodeStorage — the same forced write HandleVote performs,
  /// with the tally credit delayed by the force latency) instead of the
  /// child shipping a second cross-node message.
  void DepositChildVote(const Transid& transid, net::NodeId child);
  /// The F+1 acceptors `voter`'s vote goes to, as acceptor_endpoints
  /// indices: the voter's co-located pairs first (a local forced write,
  /// not a network message), the home node's pairs next (their acks are
  /// then home-local), then pairs on `prefer` nodes (the home passes its
  /// participant set so its spill-over copies land where reclaims are
  /// free), the rest in index order. Any F+1 subset intersects every
  /// resolver's F+1 prepare quorum. Deterministic in the arguments, so
  /// the home can recompute any child's target set for the reclaim mask.
  std::vector<size_t> VoteTargetIndices(
      net::NodeId voter, net::NodeId home,
      const std::set<net::NodeId>& prefer) const;
  /// Bitmask (bit k = endpoint k) of every acceptor that may hold a voter
  /// instance for `txn` and is NOT covered by a participant node's local
  /// reclaim (see ReclaimLocalAcceptors): the union of VoteTargetIndices
  /// over {home} ∪ children — widened to all endpoints once a fallback
  /// round ran (its accept fan-out touches the whole group) — minus every
  /// child-node bit.
  uint32_t ReclaimMaskFor(const TxnEntry& txn) const;
  /// Participant-side GC: when the final disposition lands here (phase 2,
  /// an abort, or an acceptor-resolved outcome) every co-located acceptor
  /// log is sealed in place — a direct mutation of the shared durable
  /// store, zero messages and zero events.
  void ReclaimLocalAcceptors(const Transid& transid, Disposition d);
  void HandlePaxosVoteAck(const net::Message& msg);
  /// Commit point check: every voter ({home} ∪ children) durably accepted
  /// at F+1 acceptors.
  void CheckVoteTally(TxnEntry* txn);
  /// Arms the stall fallback once phase 1 finished but acks are missing.
  void ArmPaxosFallbackTimer(const Transid& transid);
  /// Fast-path recovery at the home: full abort-proposing rounds at a
  /// usurping ballot on every voter instance (all Prepared => commit, any
  /// Aborted => abort, else retry).
  void StartPaxosFallback(const Transid& transid);
  /// GC: queues a decided transaction's instances for reclamation once its
  /// phase-2 / abort safe-deliveries all drained.
  void MaybeQueueReclaim(const Transid& transid);
  void FlushReclaims();

  // -- Orphaned-lock sweep ------------------------------------------------------------
  // A DISCPROCESS can end up holding locks under a transid no TMP tracks:
  // an operation retried transparently across a participant node's crash
  // and recovery re-acquires its lock (and re-applies its mutation) at the
  // recovered DISCPROCESS *after* the transaction's abort was fully
  // processed there — the disposition notification preceded the lock, so
  // nothing ever releases it. The sweep (piggybacked on the in-doubt
  // resolve tick) asks every local DISCPROCESS who holds locks, and any
  // transid unknown to this TMP on two consecutive ticks (grace for
  // in-flight remote-begin registration) is resolved against the durable
  // record — local MAT, else the home TMP — and then run through the
  // ordinary orphan commit/abort pipeline so backout also undoes the
  // re-applied images.
  void SweepOrphanLocks();
  void ResolveOrphanLock(const Transid& t);
  void ApplyOrphanDisposition(const Transid& t, Disposition d);

  // -- Helpers ----------------------------------------------------------------------
  TxnEntry* FindTxn(const Transid& t);
  TxnEntry* CreateTxn(const Transid& t, bool is_home, net::NodeId parent);
  /// Arms the abandonment timer for a freshly created transaction.
  void ArmAutoAbort(const Transid& t);
  void NotifyLocalDiscs(const Transid& t, uint8_t disc_state);
  Disposition LookupDisposition(const Transid& t) const;
  void CheckpointTxn(const TxnEntry& txn, bool removed);
  net::Address Tmp(net::NodeId node) const { return net::Address(node, "$TMP"); }

  /// Interned handles for every TMP metric, registered once at attach. The
  /// transition matrix pre-registers all from->to names so the Figure-3
  /// accounting in SetState is a single indexed increment.
  struct Metrics {
    sim::MetricId state_broadcasts, txns_seen, auto_aborts, illegal_transitions;
    sim::MetricId begins, ends, voluntary_aborts, remote_begins;
    sim::MetricId phase1_received, phase1_sent, audit_forces, commits;
    sim::MetricId mat_forces;
    sim::MetricId mat_group_commit_size;  // histogram
    sim::MetricId phase2_received, orphan_phase2, orphan_aborts;
    sim::MetricId aborts_started, backouts, forced_dispositions;
    sim::MetricId unilateral_aborts, safe_queued, safe_delivered;
    sim::MetricId takeover_resumed_commits, takeover_resumed_aborts;
    sim::MetricId resolves_served, resolves_sent;
    sim::MetricId indoubt_resolved_commits, indoubt_resolved_aborts;
    sim::MetricId indoubt_blocked_on_home;
    sim::MetricId resolve_malformed_replies;
    sim::MetricId orphan_lock_commits, orphan_lock_aborts;
    sim::MetricId paxos_rounds, paxos_commit_points, paxos_adopted_aborts;
    sim::MetricId paxos_resolved_commits, paxos_resolved_aborts, paxos_seals;
    sim::MetricId paxos_votes_cast, paxos_fast_commit_points, paxos_fallbacks;
    sim::MetricId paxos_reclaims_sent;
    sim::MetricId indoubt_hold_us;    // histogram
    sim::MetricId commit_latency_us;  // histogram
    sim::MetricId transition[kNumTxnStates][kNumTxnStates];
  };

  TmpConfig config_;
  Metrics m_;
  std::map<Transid, TxnEntry> txns_;
  uint64_t next_seq_ = 0;

  struct SafeDelivery {
    net::NodeId dest;
    uint32_t tag;
    Transid transid;
    bool in_flight = false;
  };
  std::list<SafeDelivery> safe_queue_;
  uint64_t safe_timer_ = 0;

  /// Lock-holding transids unknown to this TMP at the last sweep tick
  /// (first strike); acted on if still unknown when seen again.
  std::set<Transid> orphan_suspects_;

  /// Untracked transids with a seal round in flight, and the next ballot
  /// attempt each should use (a re-seal at an unchanged ballot would be
  /// rejected by its own earlier promise).
  std::set<Transid> paxos_sealing_;
  std::map<Transid, uint32_t> paxos_seal_attempt_;

  /// Fast-path GC (home only, volatile: a lost reclaim is caught by the
  /// acceptors' orphan sweep). Decided transactions waiting for their
  /// safe-delivery drain, then the batched per-acceptor reclaim flush —
  /// each entry carries the ReclaimMaskFor() bitmask of acceptors that
  /// may hold its instances, so untouched acceptors get no message.
  struct ReclaimEntry {
    Disposition disposition;
    uint32_t endpoint_mask;
  };
  std::map<uint64_t, ReclaimEntry> reclaim_waiting_;
  std::vector<std::pair<uint64_t, ReclaimEntry>> reclaim_pending_;
  bool reclaim_flush_armed_ = false;

  /// One committer waiting for its commit record to reach the MAT.
  struct MatWaiter {
    Transid transid;
    sim::TraceContext trace;  ///< finish the commit under its own span
  };
  // Group-commit state (primary-only, volatile: a takeover re-runs phase 1
  // for ending transactions, which re-enters CompleteCommit).
  std::vector<MatWaiter> mat_waiting_;
  bool mat_gathering_ = false;        ///< window timer armed
  bool mat_write_in_flight_ = false;  ///< mat_force_latency timer armed
};

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_TMP_PROCESS_H_
