file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_manufacturing.dir/bench_fig4_manufacturing.cc.o"
  "CMakeFiles/bench_fig4_manufacturing.dir/bench_fig4_manufacturing.cc.o.d"
  "bench_fig4_manufacturing"
  "bench_fig4_manufacturing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_manufacturing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
