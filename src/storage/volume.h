// Volume: one logical disc volume — the unit a DISCPROCESS pair controls.
// Models what the paper's storage architecture needs:
//   * mirrored drives (write-both / read-either, drive failure and revive),
//   * a main-memory cache with an explicit durable/volatile boundary: data
//     base updates are NOT forced to disc at update time (the NonStop claim);
//     unflushed updates are lost on total node failure (DropVolatile), which
//     is exactly the case ROLLFORWARD recovers,
//   * structured files (the three organizations) living on the volume, and
//   * whole-volume archives for ROLLFORWARD.
//
// A Volume is passive hardware: latency is charged by the DISCPROCESS. It
// either charges a flat disc_ios * io_latency (legacy model), or — with
// overlap_mirror_reads — consults the volume's per-drive schedule, which
// implements the paper's write-both / read-either rule: reads occupy the
// drive that frees first, writes occupy every up drive.

#ifndef ENCOMPASS_STORAGE_VOLUME_H_
#define ENCOMPASS_STORAGE_VOLUME_H_

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "sim/stats.h"
#include "storage/file.h"

namespace encompass::storage {

/// Volume creation parameters.
struct VolumeConfig {
  bool mirrored = true;        ///< two physical drives
  size_t block_size = 4096;    ///< node size for key-sequenced files
  size_t cache_capacity = 4096;///< cached records ("most recently referenced
                               ///  blocks of data in main memory")
};

/// Outcome of one volume operation.
struct OpResult {
  Status status;
  int disc_ios = 0;   ///< physical reads this op required (0 on cache hit)
  Bytes value;        ///< Read/Seek: record image
  Bytes key;          ///< Seek: located key; Insert: assigned key
  Bytes before;       ///< Mutate: prior record image (for the audit trail)
  bool existed = false;  ///< Mutate: a prior image existed
};

/// One scheduled physical disc operation (see Volume::ScheduleRead/Write).
struct DriveSchedule {
  SimTime complete = 0;  ///< simulated completion time of the transfer
  int drive = 0;         ///< drive the read was placed on (first, for writes)
  int queue_depth = 0;   ///< ops already pending on that drive at issue time
};

/// A mirrored logical disc volume holding structured files.
class Volume {
 public:
  explicit Volume(std::string name, VolumeConfig config = {});

  const std::string& name() const { return name_; }
  const VolumeConfig& config() const { return config_; }

  // -- Files -------------------------------------------------------------------

  Status CreateFile(const std::string& fname, FileOrganization org,
                    FileOptions options = {});
  Status DropFile(const std::string& fname);
  StructuredFile* Find(const std::string& fname) const;
  std::vector<std::string> FileNames() const;

  // -- Record operations ---------------------------------------------------------

  /// Applies a mutation, captures the before-image, and registers the change
  /// in the volatile ledger (unforced write-back). For an entry-sequenced
  /// append pass an empty key; the assigned key comes back in OpResult::key.
  OpResult Mutate(const std::string& fname, MutationOp op, const Slice& key,
                  const Slice& record);

  /// Applies the compensating change for a mutation being backed out:
  /// insert -> physical removal, update -> restore the before-image,
  /// delete -> re-insert the before-image. Idempotent: re-undoing an already
  /// compensated mutation is a no-op (a takeover can replay backout work).
  /// The compensation itself enters the volatile ledger like any write.
  OpResult ApplyUndo(const std::string& fname, MutationOp original_op,
                     const Slice& key, const Slice& before);

  /// Point read through the cache.
  OpResult ReadRecord(const std::string& fname, const Slice& key);

  /// Positions to the first record with key >= (inclusive) or > the given key.
  OpResult SeekRecord(const std::string& fname, const Slice& key, bool inclusive);

  /// Alternate-key lookup; OpResult::value holds length-prefixed primary keys.
  OpResult ReadAlternate(const std::string& fname, const std::string& field,
                         const std::string& value);

  // -- Durability boundary ---------------------------------------------------------

  /// Forces all volatile updates to disc (clears the ledger). Returns the
  /// number of physical writes performed (x up drives).
  int Flush();
  size_t VolatileCount() const { return undo_ledger_.size(); }
  /// Total node failure: every unflushed update is lost. Reverts the ledger
  /// in reverse order, restoring the last flushed state.
  void DropVolatile();

  // -- Mirrored drives ---------------------------------------------------------------

  int drive_count() const { return config_.mirrored ? 2 : 1; }
  bool DriveUp(int drive) const;
  /// Fails one physical drive. Service continues on the mirror.
  void FailDrive(int drive);
  /// Revives a failed drive by copying from the survivor; returns the number
  /// of records copied (the caller charges proportional time).
  Result<size_t> ReviveDrive(int drive);
  /// At least one drive is up.
  bool Usable() const;
  int UpDrives() const;

  // -- Drive schedule (read-either / write-both timing model) -----------------------

  /// Places a physical read of `service` duration on whichever up drive
  /// frees first (the paper's read-either rule): concurrent reads alternate
  /// across the mirror and overlap. Advances that drive's busy-until time.
  DriveSchedule ScheduleRead(SimTime now, SimDuration service);
  /// Places a physical write on every up drive (write-both); completion is
  /// when the slowest copy finishes.
  DriveSchedule ScheduleWrite(SimTime now, SimDuration service);
  /// Total simulated time drive `d` has spent transferring.
  int64_t drive_busy_time(int drive) const;
  /// Physical reads placed on drive `d` by ScheduleRead.
  int64_t drive_reads(int drive) const;

  // -- Archive (for ROLLFORWARD) -------------------------------------------------------

  /// Self-contained snapshot of every file (schema + content). Call at a
  /// transaction-consistent point (online fuzzy archives are out of scope).
  Bytes Archive() const;
  Status RestoreFromArchive(const Slice& archive);

  // -- Statistics ---------------------------------------------------------------------

  /// Mirrors the volume's I/O statistics into the simulation-wide Stats
  /// registry as storage.<volume>.* counters. Optional: an unbound volume
  /// (unit tests, tools) keeps only its local counters. Idempotent.
  void BindStats(sim::Stats* stats);

  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }
  int64_t physical_reads() const { return physical_reads_; }
  int64_t physical_writes() const { return physical_writes_; }

  /// Stable dense id the cache interns `fname` to; creates one on first use.
  /// Exposed for tests (id stability across DropFile/CreateFile reuse).
  uint32_t CacheFileId(const std::string& fname);

 private:
  struct UndoEntry {
    std::string file;
    MutationOp op;
    Bytes key;
    Bytes before;
    bool existed;
  };

  /// One resident cache line: which record of which (interned) file.
  struct CacheEntry {
    uint32_t file_id;
    Bytes key;
  };
  using LruList = std::list<CacheEntry>;

  /// Index key viewing the bytes owned by the LRU node (list nodes are
  /// pointer-stable across splice), so lookups hash caller-provided slices
  /// directly — a cache hit allocates nothing.
  struct CacheRef {
    uint32_t file_id;
    Slice key;
  };
  struct CacheRefHash {
    size_t operator()(const CacheRef& r) const {
      size_t h = std::hash<std::string_view>{}(std::string_view(
          reinterpret_cast<const char*>(r.key.data()), r.key.size()));
      return h ^ (static_cast<size_t>(r.file_id) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct CacheRefEq {
    bool operator()(const CacheRef& a, const CacheRef& b) const {
      return a.file_id == b.file_id && a.key == b.key;
    }
  };

  /// Physically removes a record regardless of organization (undo of insert).
  Status PhysicalRemove(StructuredFile* file, const Slice& key);
  void CacheTouch(uint32_t file_id, const Slice& key);
  bool CacheHit(uint32_t file_id, const Slice& key);
  void CacheErase(uint32_t file_id, const Slice& key);
  void CacheDropFile(uint32_t file_id);
  void CacheClear();

  std::string name_;
  VolumeConfig config_;
  std::map<std::string, std::unique_ptr<StructuredFile>> files_;
  std::vector<UndoEntry> undo_ledger_;
  bool drive_up_[2] = {true, true};
  bool drive_stale_[2] = {false, false};

  // Drive schedule (consulted only under overlap_mirror_reads).
  SimTime drive_busy_until_[2] = {0, 0};
  std::deque<SimTime> drive_inflight_[2];  ///< completion times, pruned lazily
  int64_t drive_busy_time_[2] = {0, 0};
  int64_t drive_reads_[2] = {0, 0};

  // LRU cache over (interned file id, record key) pairs.
  std::unordered_map<std::string, uint32_t> cache_file_ids_;
  LruList lru_;
  std::unordered_map<CacheRef, LruList::iterator, CacheRefHash, CacheRefEq>
      cache_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t physical_reads_ = 0;
  int64_t physical_writes_ = 0;

  // Optional mirror into the simulation's Stats registry (BindStats).
  sim::Stats* stats_ = nullptr;
  sim::MetricId m_cache_hits_, m_cache_misses_;
  sim::MetricId m_physical_reads_, m_physical_writes_;
};

}  // namespace encompass::storage

#endif  // ENCOMPASS_STORAGE_VOLUME_H_
