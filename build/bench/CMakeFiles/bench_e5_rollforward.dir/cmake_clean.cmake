file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_rollforward.dir/bench_e5_rollforward.cc.o"
  "CMakeFiles/bench_e5_rollforward.dir/bench_e5_rollforward.cc.o.d"
  "bench_e5_rollforward"
  "bench_e5_rollforward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_rollforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
