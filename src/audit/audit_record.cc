#include "audit/audit_record.h"

#include "common/coding.h"

namespace encompass::audit {

Bytes AuditRecord::Encode() const {
  Bytes out;
  PutFixed64(&out, transid.Pack());
  PutLengthPrefixed(&out, Slice(volume));
  PutLengthPrefixed(&out, Slice(file));
  PutFixed8(&out, static_cast<uint8_t>(op));
  PutLengthPrefixed(&out, Slice(key));
  PutLengthPrefixed(&out, Slice(before));
  PutLengthPrefixed(&out, Slice(after));
  PutVarint64(&out, lsn);
  return out;
}

Result<AuditRecord> AuditRecord::Decode(Slice* in) {
  AuditRecord rec;
  uint64_t packed;
  uint8_t op_byte;
  if (!GetFixed64(in, &packed) || !GetLengthPrefixedString(in, &rec.volume) ||
      !GetLengthPrefixedString(in, &rec.file) || !GetFixed8(in, &op_byte) ||
      !GetLengthPrefixedBytes(in, &rec.key) ||
      !GetLengthPrefixedBytes(in, &rec.before) ||
      !GetLengthPrefixedBytes(in, &rec.after) || !GetVarint64(in, &rec.lsn)) {
    return DecodeError("audit record");
  }
  rec.transid = Transid::Unpack(packed);
  rec.op = static_cast<storage::MutationOp>(op_byte);
  return rec;
}

Bytes CompletionRecord::Encode() const {
  Bytes out;
  PutFixed64(&out, transid.Pack());
  PutFixed8(&out, static_cast<uint8_t>(completion));
  return out;
}

Result<CompletionRecord> CompletionRecord::Decode(Slice* in) {
  CompletionRecord rec;
  uint64_t packed;
  uint8_t c;
  if (!GetFixed64(in, &packed) || !GetFixed8(in, &c)) {
    return DecodeError("completion record");
  }
  rec.transid = Transid::Unpack(packed);
  rec.completion = static_cast<Completion>(c);
  return rec;
}

}  // namespace encompass::audit
