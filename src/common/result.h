// Result<T>: a value-or-Status pair, the non-throwing analogue of
// absl::StatusOr used throughout the library.

#ifndef ENCOMPASS_COMMON_RESULT_H_
#define ENCOMPASS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace encompass {

/// Holds either a T (when status().ok()) or an error Status.
///
/// Accessing value() on an error Result is a programming error and asserts in
/// debug builds; callers must check ok() first (or use ValueOr).
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. Must not be OK (an OK status carries no
  /// value and would leave the Result in a contradictory state).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set
};

}  // namespace encompass

/// Evaluates a Result-returning expression; on error returns the Status, on
/// success assigns the value to `lhs` (which must be an existing lvalue).
#define ENCOMPASS_ASSIGN_OR_RETURN(lhs, expr)              \
  do {                                                     \
    auto _res = (expr);                                    \
    if (!_res.ok()) return _res.status();                  \
    lhs = std::move(_res.value());                         \
  } while (0)

#endif  // ENCOMPASS_COMMON_RESULT_H_
