#include "common/crc32.h"

#include <array>

namespace encompass {
namespace {

constexpr uint32_t kCrc32cPoly = 0x82f63b78;  // reversed Castagnoli

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kCrc32cPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const uint8_t* data, size_t n) {
  const auto& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace encompass
