#include "encompass/tcp.h"

#include "common/coding.h"
#include "common/logging.h"
#include "encompass/server.h"

namespace encompass::app {

SendDirective DefaultReplyPolicy(Fields&, const Status& status, const Slice&) {
  if (status.ok()) return SendDirective::kContinue;
  LOG_DEBUG << "SEND reply error: " << status.ToString();
  if (status.IsTimeout() || status.IsRestartRequested() || status.IsAborted() ||
      status.IsBusy() || status.IsUnavailable() || status.IsPartitioned()) {
    return SendDirective::kRestartTransaction;
  }
  return SendDirective::kFailProgram;
}

void Tcp::OnPairAttach() {
  sim::Stats& stats = this->stats();
  m_.terminals_attached = stats.RegisterCounter("tcp.terminals_attached");
  m_.commits = stats.RegisterCounter("tcp.commits");
  m_.voluntary_aborts = stats.RegisterCounter("tcp.voluntary_aborts");
  m_.failed_aborts = stats.RegisterCounter("tcp.failed_aborts");
  m_.restart_limit_exceeded = stats.RegisterCounter("tcp.restart_limit_exceeded");
  m_.txn_restarts = stats.RegisterCounter("tcp.txn_restarts");
  m_.programs_completed = stats.RegisterCounter("tcp.programs_completed");
  m_.programs_failed = stats.RegisterCounter("tcp.programs_failed");
  m_.terminals_done = stats.RegisterCounter("tcp.terminals_done");
  m_.takeover_restarts = stats.RegisterCounter("tcp.takeover_restarts");
}

bool Tcp::AttachTerminal(const std::string& terminal_name,
                         const std::string& program_name, uint64_t iterations) {
  if (terminals_.size() >= config_.max_terminals) return false;
  auto it = config_.programs.find(program_name);
  if (it == config_.programs.end()) return false;
  Terminal term;
  term.name = terminal_name;
  term.program_name = program_name;
  term.program = it->second;
  term.remaining = iterations;
  terminals_.push_back(std::move(term));
  size_t idx = terminals_.size() - 1;
  CheckpointTerminal(terminals_[idx]);
  stats().Incr(m_.terminals_attached);
  // Kick off interpretation as a scheduled event.
  SetTimer(Micros(1), [this, idx]() { Step(idx); });
  return true;
}

size_t Tcp::idle_terminals() const {
  size_t n = 0;
  for (const auto& t : terminals_) n += t.done ? 1 : 0;
  return n;
}

void Tcp::Step(size_t idx) {
  if (!IsPrimary() || idx >= terminals_.size()) return;
  Terminal& term = terminals_[idx];
  if (term.done || term.waiting) return;

  while (term.pc < term.program->verbs().size()) {
    const auto& verb = term.program->verbs()[term.pc];
    switch (verb.type) {
      case ScreenProgram::VerbType::kAccept:
        verb.accept(term.fields, sim()->RngFor(id().node));
        ++term.pc;
        continue;
      case ScreenProgram::VerbType::kCompute:
        verb.compute(term.fields);
        ++term.pc;
        continue;
      case ScreenProgram::VerbType::kBegin:
        RunBegin(idx);
        return;
      case ScreenProgram::VerbType::kSend:
        RunSend(idx, verb);
        return;
      case ScreenProgram::VerbType::kEnd:
        RunEnd(idx);
        return;
      case ScreenProgram::VerbType::kAbort:
        RunAbort(idx, /*then_restart=*/false, /*voluntary=*/true);
        return;
      case ScreenProgram::VerbType::kRestart:
        RestartTransaction(idx);
        return;
    }
  }
  FinishIteration(idx, /*success=*/true);
}

void Tcp::RunBegin(size_t idx) {
  Terminal& term = terminals_[idx];
  term.waiting = true;
  // Checkpoint the data extracted from the input screen(s): a restart after
  // failure resumes here without re-entering input.
  term.begin_snapshot = term.fields;
  term.begin_pc = term.pc;
  CheckpointTerminal(term);
  os::CallOptions opt;
  opt.timeout = config_.verb_timeout;
  opt.retries = 2;
  Call(Tmp(), tmf::kTmfBegin, {},
       [this, idx](const Status& s, const net::Message& m) {
         Terminal& term = terminals_[idx];
         term.waiting = false;
         if (!s.ok()) {
           // TMP unavailable: retry the BEGIN shortly.
           SetTimer(Millis(100), [this, idx]() { Step(idx); });
           return;
         }
         auto t = tmf::DecodeTransidPayload(Slice(m.payload));
         if (!t.ok()) {
           FinishIteration(idx, false);
           return;
         }
         // The terminal enters transaction mode.
         term.transid = t->Pack();
         ++term.pc;
         CheckpointTerminal(term);
         Step(idx);
       },
       opt);
}

void Tcp::RunSend(size_t idx, const ScreenProgram::Verb& verb) {
  Terminal& term = terminals_[idx];
  term.waiting = true;
  Bytes request = verb.build_request(term.fields);
  net::NodeId dest = verb.server_node == 0 ? node()->id() : verb.server_node;

  auto issue_send = [this, idx, dest, server_class = verb.server_class,
                     request = std::move(request)]() {
    Terminal& term = terminals_[idx];
    os::CallOptions opt;
    opt.timeout = config_.send_timeout;
    set_current_transid(term.transid);
    Call(net::Address(dest, server_class), kServerRequest, request,
         [this, idx](const Status& s, const net::Message& m) {
           Terminal& term = terminals_[idx];
           term.waiting = false;
           const auto& verb = term.program->verbs()[term.pc];
           SendDirective d = verb.on_reply(term.fields, s, Slice(m.payload));
           if (d == SendDirective::kContinue) ++term.pc;
           ApplyDirective(idx, d);
         },
         opt);
    set_current_transid(0);
  };

  if (term.transid != 0 && dest != node()->id()) {
    // First transmission of the transid to another node must be preceded by
    // remote-transaction-begin via the TMPs.
    os::CallOptions opt;
    opt.timeout = config_.verb_timeout;
    Call(Tmp(), tmf::kTmfEnsureRemote,
         tmf::EncodeEnsureRemote(Transid::Unpack(term.transid), dest),
         [this, idx, issue_send](const Status& s, const net::Message&) {
           if (!s.ok()) {
             Terminal& term = terminals_[idx];
             term.waiting = false;
             ApplyDirective(idx, SendDirective::kRestartTransaction);
             return;
           }
           issue_send();
         },
         opt);
    return;
  }
  issue_send();
}

void Tcp::ApplyDirective(size_t idx, SendDirective directive) {
  switch (directive) {
    case SendDirective::kContinue:
      Step(idx);
      return;
    case SendDirective::kRestartTransaction:
      RestartTransaction(idx);
      return;
    case SendDirective::kAbortTransaction:
      RunAbort(idx, /*then_restart=*/false, /*voluntary=*/true);
      return;
    case SendDirective::kFailProgram:
      RunAbort(idx, /*then_restart=*/false, /*voluntary=*/false);
      return;
  }
}

void Tcp::RunEnd(size_t idx) {
  Terminal& term = terminals_[idx];
  if (term.transid == 0) {  // END outside transaction mode: no-op
    ++term.pc;
    Step(idx);
    return;
  }
  term.waiting = true;
  os::CallOptions opt;
  opt.timeout = config_.verb_timeout;
  opt.retries = 2;
  Call(Tmp(), tmf::kTmfEnd,
       tmf::EncodeTransidPayload(Transid::Unpack(term.transid)),
       [this, idx](const Status& s, const net::Message&) {
         Terminal& term = terminals_[idx];
         term.waiting = false;
         if (s.ok()) {
           // Updates are now permanent; leave transaction mode.
           term.transid = 0;
           term.restarts = 0;
           ++term.pc;
           ++committed_;
           stats().Incr(m_.commits);
           CheckpointCounters();
           CheckpointTerminal(term);
           Step(idx);
           return;
         }
         // "The END-TRANSACTION request can be rejected because the
         // transaction has been aborted by the system ... the program may
         // be restarted at the BEGIN-TRANSACTION point."
         LOG_DEBUG << "END rejected: " << s.ToString();
         term.transid = 0;
         RestartTransaction(idx);
       },
       opt);
}

void Tcp::RunAbort(size_t idx, bool then_restart, bool voluntary) {
  Terminal& term = terminals_[idx];
  if (term.transid == 0) {
    if (then_restart) {
      RestartTransaction(idx);
    } else {
      FinishIteration(idx, voluntary);
    }
    return;
  }
  term.waiting = true;
  uint64_t transid = term.transid;
  term.transid = 0;
  os::CallOptions opt;
  opt.timeout = config_.verb_timeout;
  opt.retries = 2;
  Call(Tmp(), tmf::kTmfAbort,
       tmf::EncodeTransidPayload(Transid::Unpack(transid)),
       [this, idx, then_restart, voluntary](const Status&, const net::Message&) {
         Terminal& term = terminals_[idx];
         term.waiting = false;
         stats().Incr(voluntary ? m_.voluntary_aborts : m_.failed_aborts);
         if (then_restart) {
           RestartTransaction(idx);
         } else {
           // ABORT-TRANSACTION ends the logical transaction attempt; the
           // program completes (unsuccessfully for failures).
           FinishIteration(idx, voluntary);
         }
       },
       opt);
}

void Tcp::RestartTransaction(size_t idx) {
  Terminal& term = terminals_[idx];
  if (term.transid != 0) {
    // Back out first, then restart.
    RunAbort(idx, /*then_restart=*/true, /*voluntary=*/true);
    return;
  }
  if (term.restarts >= config_.restart_limit) {
    stats().Incr(m_.restart_limit_exceeded);
    FinishIteration(idx, /*success=*/false);
    return;
  }
  ++term.restarts;
  ++restarts_;
  stats().Incr(m_.txn_restarts);
  // Resume at BEGIN-TRANSACTION with the checkpointed screen input — the
  // terminal user does not re-enter the screen.
  term.fields = term.begin_snapshot;
  term.pc = term.begin_pc;
  term.transid = 0;
  CheckpointTerminal(term);
  // Growing (capped) randomized backoff lets the conflict — a deadlock
  // partner or a partition — clear before the next attempt. The jitter
  // breaks phase-locked livelock when many terminals restart together.
  SimDuration backoff = Millis(20) * term.restarts;
  if (backoff > Millis(1000)) backoff = Millis(1000);
  backoff = backoff / 2 +
            static_cast<SimDuration>(sim()->RngFor(id().node).Uniform(
                static_cast<uint64_t>(backoff)));
  SetTimer(backoff, [this, idx]() { Step(idx); });
}

void Tcp::FinishIteration(size_t idx, bool success) {
  Terminal& term = terminals_[idx];
  if (success) {
    ++programs_completed_;
    stats().Incr(m_.programs_completed);
  } else {
    ++programs_failed_;
    stats().Incr(m_.programs_failed);
  }
  CheckpointCounters();
  term.pc = 0;
  term.restarts = 0;
  term.transid = 0;
  term.fields.clear();
  term.begin_snapshot.clear();
  if (term.remaining != UINT64_MAX) {
    if (term.remaining > 0) --term.remaining;
    if (term.remaining == 0) {
      term.done = true;
      CheckpointTerminal(term);
      stats().Incr(m_.terminals_done);
      return;
    }
  }
  CheckpointTerminal(term);
  if (config_.think_time > 0) {
    SetTimer(config_.think_time, [this, idx]() { Step(idx); });
  } else {
    SetTimer(Micros(1), [this, idx]() { Step(idx); });
  }
}

// ---------------------------------------------------------------------------
// Checkpointing and takeover
// ---------------------------------------------------------------------------

namespace {
constexpr uint8_t kCkptTerminal = 1;
constexpr uint8_t kCkptCounters = 2;
}  // namespace

void Tcp::CheckpointCounters() {
  if (!HasBackup()) return;
  Bytes out;
  PutFixed8(&out, kCkptCounters);
  PutFixed64(&out, committed_);
  PutFixed64(&out, restarts_);
  PutFixed64(&out, programs_completed_);
  PutFixed64(&out, programs_failed_);
  SendCheckpoint(std::move(out));
}

void Tcp::CheckpointTerminal(const Terminal& term) {
  if (!HasBackup()) return;
  Bytes out;
  PutFixed8(&out, kCkptTerminal);
  PutLengthPrefixed(&out, Slice(term.name));
  PutLengthPrefixed(&out, Slice(term.program_name));
  PutFixed64(&out, term.remaining);
  PutFixed64(&out, term.transid);
  PutVarint64(&out, term.begin_pc);
  PutVarint32(&out, static_cast<uint32_t>(term.restarts));
  PutFixed8(&out, term.done ? 1 : 0);
  PutVarint32(&out, static_cast<uint32_t>(term.begin_snapshot.size()));
  for (const auto& [k, v] : term.begin_snapshot) {
    PutLengthPrefixed(&out, Slice(k));
    PutLengthPrefixed(&out, Slice(v));
  }
  SendCheckpoint(std::move(out));
}

void Tcp::OnCheckpoint(const Slice& delta) {
  Slice in = delta;
  uint8_t type;
  if (!GetFixed8(&in, &type)) return;
  if (type == kCkptCounters) {
    GetFixed64(&in, &committed_);
    GetFixed64(&in, &restarts_);
    GetFixed64(&in, &programs_completed_);
    GetFixed64(&in, &programs_failed_);
    return;
  }
  Terminal term;
  uint8_t done;
  uint32_t restarts, nfields;
  uint64_t begin_pc;
  if (!GetLengthPrefixedString(&in, &term.name) ||
      !GetLengthPrefixedString(&in, &term.program_name) ||
      !GetFixed64(&in, &term.remaining) || !GetFixed64(&in, &term.transid) ||
      !GetVarint64(&in, &begin_pc) || !GetVarint32(&in, &restarts) ||
      !GetFixed8(&in, &done) || !GetVarint32(&in, &nfields)) {
    return;
  }
  term.begin_pc = static_cast<size_t>(begin_pc);
  term.restarts = static_cast<int>(restarts);
  term.done = done != 0;
  for (uint32_t i = 0; i < nfields; ++i) {
    std::string k, v;
    if (!GetLengthPrefixedString(&in, &k) || !GetLengthPrefixedString(&in, &v)) {
      return;
    }
    term.begin_snapshot[k] = v;
  }
  auto pit = config_.programs.find(term.program_name);
  term.program = pit == config_.programs.end() ? nullptr : pit->second;
  // Upsert by terminal name.
  for (auto& existing : terminals_) {
    if (existing.name == term.name) {
      existing = std::move(term);
      return;
    }
  }
  terminals_.push_back(std::move(term));
}

void Tcp::OnTakeover() {
  // Terminals whose transactions were in flight: TMF backs the transaction
  // out (we request it, since the old primary's calls died with it) and the
  // program restarts at BEGIN-TRANSACTION with the checkpointed input.
  for (size_t idx = 0; idx < terminals_.size(); ++idx) {
    Terminal& term = terminals_[idx];
    if (term.done || term.program == nullptr) continue;
    term.waiting = false;
    term.fields = term.begin_snapshot;
    term.pc = term.begin_pc;
    stats().Incr(m_.takeover_restarts);
    if (term.transid != 0) {
      uint64_t transid = term.transid;
      term.transid = 0;
      os::CallOptions opt;
      opt.timeout = config_.verb_timeout;
      opt.retries = 2;
      Call(Tmp(), tmf::kTmfAbort,
           tmf::EncodeTransidPayload(Transid::Unpack(transid)),
           [this, idx](const Status&, const net::Message&) { Step(idx); }, opt);
    } else {
      SetTimer(Millis(1), [this, idx]() { Step(idx); });
    }
  }
}

void Tcp::OnBackupAttached() {
  CheckpointCounters();
  for (const auto& term : terminals_) CheckpointTerminal(term);
}

}  // namespace encompass::app
