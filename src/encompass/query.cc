#include "encompass/query.h"

#include <cstdlib>

#include "discprocess/disc_protocol.h"

namespace encompass::app {

namespace {

bool BothNumeric(const std::string& a, const std::string& b, double* da,
                 double* db) {
  char* end_a = nullptr;
  char* end_b = nullptr;
  if (a.empty() || b.empty()) return false;
  *da = strtod(a.c_str(), &end_a);
  *db = strtod(b.c_str(), &end_b);
  return *end_a == '\0' && *end_b == '\0';
}

}  // namespace

bool Matches(const storage::Record& record, const Predicate& predicate) {
  const std::string lhs = record.Get(predicate.field);
  const std::string& rhs = predicate.value;
  if (predicate.op == CompareOp::kContains) {
    return lhs.find(rhs) != std::string::npos;
  }
  int cmp;
  double dl, dr;
  if (BothNumeric(lhs, rhs, &dl, &dr)) {
    cmp = dl < dr ? -1 : (dl > dr ? 1 : 0);
  } else {
    cmp = lhs.compare(rhs);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (predicate.op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
    case CompareOp::kContains: return false;  // handled above
  }
  return false;
}

struct QueryEngine::ScanState {
  std::string file;
  std::vector<Predicate> predicates;
  size_t limit = 0;
  SelectCallback cb;
  std::vector<Row> rows;
  Bytes next_key;
  bool inclusive = true;
};

void QueryEngine::Select(const std::string& file,
                         std::vector<Predicate> predicates, size_t limit,
                         SelectCallback cb) {
  auto state = std::make_shared<ScanState>();
  state->file = file;
  state->predicates = std::move(predicates);
  state->limit = limit;
  state->cb = std::move(cb);
  ScanStep(state);
}

void QueryEngine::ScanStep(std::shared_ptr<ScanState> state) {
  // Batched scans: one DISCPROCESS round trip fetches up to 64 records.
  fs_->Scan(state->file, Slice(state->next_key), state->inclusive,
            /*max_records=*/64,
            [this, state](const Status& s, const Bytes& payload) {
              auto next_partition = [this, state]() {
                const storage::FileDefinition* def = catalog_->Find(state->file);
                if (def != nullptr) {
                  size_t p = def->partitions.LocateIndex(Slice(state->next_key));
                  if (p + 1 < def->partitions.partition_count()) {
                    state->next_key = def->partitions.entries()[p].upper_bound;
                    state->inclusive = true;
                    ScanStep(state);
                    return true;
                  }
                }
                return false;
              };
              if (!s.ok()) {
                state->cb(s, std::move(state->rows));
                return;
              }
              auto rep = discprocess::ScanReply::Decode(Slice(payload));
              if (!rep.ok()) {
                state->cb(rep.status(), std::move(state->rows));
                return;
              }
              for (auto& entry : rep->entries) {
                auto record = storage::Record::Decode(Slice(entry.value));
                if (!record.ok()) continue;
                bool all = true;
                for (const auto& p : state->predicates) {
                  if (!Matches(*record, p)) {
                    all = false;
                    break;
                  }
                }
                if (all) {
                  state->rows.push_back(Row{entry.key, std::move(*record)});
                  if (state->limit != 0 && state->rows.size() >= state->limit) {
                    state->cb(Status::Ok(), std::move(state->rows));
                    return;
                  }
                }
                state->next_key = entry.key;
                state->inclusive = false;
              }
              if (!rep->entries.empty() && !rep->at_end) {
                state->next_key = rep->entries.back().key;
                state->inclusive = false;
                ScanStep(state);
                return;
              }
              // End of this partition: hop to the next or finish.
              if (!next_partition()) {
                state->cb(Status::Ok(), std::move(state->rows));
              }
            });
}

void QueryEngine::Compute(const std::string& file,
                          std::vector<Predicate> predicates,
                          const std::string& field, Aggregate aggregate,
                          ComputeCallback cb) {
  Select(file, std::move(predicates), 0,
         [field, aggregate, cb = std::move(cb)](const Status& s,
                                                std::vector<Row> rows) {
           if (!s.ok()) {
             cb(s, 0.0);
             return;
           }
           if (aggregate == Aggregate::kCount) {
             cb(Status::Ok(), static_cast<double>(rows.size()));
             return;
           }
           double sum = 0, mn = 0, mx = 0;
           size_t n = 0;
           for (const auto& row : rows) {
             const std::string v = row.record.Get(field);
             char* end = nullptr;
             double d = strtod(v.c_str(), &end);
             if (v.empty() || *end != '\0') continue;
             if (n == 0) mn = mx = d;
             mn = d < mn ? d : mn;
             mx = d > mx ? d : mx;
             sum += d;
             ++n;
           }
           switch (aggregate) {
             case Aggregate::kSum: cb(Status::Ok(), sum); return;
             case Aggregate::kMin: cb(Status::Ok(), mn); return;
             case Aggregate::kMax: cb(Status::Ok(), mx); return;
             case Aggregate::kAvg:
               cb(Status::Ok(), n == 0 ? 0.0 : sum / static_cast<double>(n));
               return;
             case Aggregate::kCount: return;  // handled above
           }
         });
}

}  // namespace encompass::app
