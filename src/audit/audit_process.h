// AuditProcess: the process-pair that writes audit trails. "All audited
// discs on a given controller share an AUDITPROCESS and an audit trail." It
// accepts appended images from DISCPROCESSes (unforced), forces the trail to
// disc on request (phase one of commit), and serves per-transaction image
// fetches for the BACKOUTPROCESS and for ROLLFORWARD.

#ifndef ENCOMPASS_AUDIT_AUDIT_PROCESS_H_
#define ENCOMPASS_AUDIT_AUDIT_PROCESS_H_

#include <string>

#include "audit/audit_trail.h"
#include "os/process_pair.h"

namespace encompass::audit {

/// Audit protocol tags.
enum AuditTag : uint32_t {
  kAuditAppend = net::kTagAudit + 1,   ///< one-way: batch of AuditRecords
  kAuditForce = net::kTagAudit + 2,    ///< request: force trail to disc
  kAuditFetchTxn = net::kTagAudit + 3, ///< request: all images of a transid
  kAuditPurge = net::kTagAudit + 4,    ///< request: drop audit files <= lsn
                                       ///  (payload: fixed64 up_to_lsn);
                                       ///  reply payload: varint files purged
};

/// Encodes a batch of audit records for a kAuditAppend payload.
Bytes EncodeAuditBatch(const std::vector<AuditRecord>& records);
/// Decodes a batch; Corruption on malformed input.
Result<std::vector<AuditRecord>> DecodeAuditBatch(const Slice& payload);

/// Behaviour knobs for the audit process.
struct AuditProcessConfig {
  AuditTrail* trail = nullptr;          ///< shared durable trail (disc state)
  SimDuration force_latency = Millis(8);///< disc force (sequential write) cost
};

/// The AUDITPROCESS pair.
class AuditProcess : public os::PairedProcess {
 public:
  explicit AuditProcess(AuditProcessConfig config) : config_(config) {}

  std::string DebugName() const override { return pair_name() + "/audit"; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;

 private:
  void HandleAppend(const net::Message& msg);
  void HandleForce(const net::Message& msg);
  void HandleFetch(const net::Message& msg);

  struct Metrics {
    sim::MetricId appended, forces, forced_records, files_purged;
  };

  AuditProcessConfig config_;
  Metrics m_;
};

}  // namespace encompass::audit

#endif  // ENCOMPASS_AUDIT_AUDIT_PROCESS_H_
