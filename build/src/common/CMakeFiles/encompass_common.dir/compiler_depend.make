# Empty compiler generated dependencies file for encompass_common.
# This may be replaced when dependencies are built.
