// ServerClassRouter: ENCOMPASS application control — "dynamic creation and
// deletion of application server processes to ensure good response time and
// utilization of resources as the workload ... changes" (Pathway-style
// server classes). The router runs as a NonStop process-pair: the pool
// membership is checkpointed to the backup, so a takeover keeps routing to
// the surviving servers (in-flight requests resolve via requester retries).
// The router forwards each request to an idle server (spawning up to
// max_servers under load), queues excess work, and retires idle servers
// beyond min_servers.

#ifndef ENCOMPASS_ENCOMPASS_SERVER_CLASS_H_
#define ENCOMPASS_ENCOMPASS_SERVER_CLASS_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "encompass/server.h"
#include "os/node.h"
#include "os/process_pair.h"

namespace encompass::app {

/// Configuration of one server class.
struct ServerClassConfig {
  std::string name;          ///< pair name, e.g. "$SC.TRANSFER"
  int min_servers = 1;
  int max_servers = 8;
  /// Queue depth that triggers creation of an additional server.
  size_t spawn_queue_depth = 2;
  /// An idle server beyond min_servers is deleted after this long.
  SimDuration idle_shutdown = Seconds(5);
  SimDuration request_timeout = Seconds(10);
  /// Creates one server instance on the given CPU (returns its pid, 0 on
  /// failure). The router owns placement via `cpus`.
  std::function<net::Pid(os::Node*, int cpu)> factory;
  std::vector<int> cpus = {0, 1, 2, 3};  ///< round-robin placement
};

/// The server-class router pair.
class ServerClassRouter : public os::PairedProcess {
 public:
  explicit ServerClassRouter(ServerClassConfig config)
      : config_(std::move(config)) {}

  std::string DebugName() const override { return config_.name; }

  int server_count() const { return static_cast<int>(servers_.size()); }
  size_t queue_depth() const { return queue_.size(); }

 protected:
  void OnPairAttach() override;
  void OnPairStart() override;
  void OnRequest(const net::Message& msg) override;
  void OnCheckpoint(const Slice& delta) override;
  void OnTakeover() override;
  void OnBackupAttached() override;
  void OnPairCpuDown(int cpu) override;

 private:
  struct ServerSlot {
    net::Pid pid = 0;
    bool busy = false;
    SimTime idle_since = 0;
  };

  void Dispatch();
  net::Pid SpawnServer();
  void ForwardTo(ServerSlot* slot, const net::Message& request);
  void ReapIdleServers();
  void EnsureReapTimer();
  void CkptPool(net::Pid pid, bool removed);

  struct Metrics {
    sim::MetricId spawned, reaped;
    sim::MetricId queue_depth;  ///< histogram, sampled on every enqueue
  };

  ServerClassConfig config_;
  Metrics m_;
  std::vector<ServerSlot> servers_;
  std::deque<net::Message> queue_;
  int next_cpu_ = 0;
  uint64_t reap_timer_ = 0;
};

/// Spawns a ServerClassRouter pair named config.name on the given CPUs.
ServerClassRouter* SpawnServerClass(os::Node* node, ServerClassConfig config,
                                    int cpu_primary, int cpu_backup);

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_SERVER_CLASS_H_
