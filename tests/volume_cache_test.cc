// Regression tests for the Volume's interned-id LRU cache and the per-drive
// read-either/write-both schedule: eviction order, hit/miss accounting
// across Mutate/ApplyUndo/DropVolatile, interned-id stability across
// DropFile/CreateFile reuse, and the drive scheduler's overlap behavior.

#include <gtest/gtest.h>

#include <string>

#include "common/sim_time.h"
#include "storage/volume.h"

namespace encompass::storage {
namespace {

Volume SmallCacheVolume(size_t capacity) {
  VolumeConfig cfg;
  cfg.cache_capacity = capacity;
  return Volume("$T", cfg);
}

void Put(Volume* v, const std::string& file, const std::string& key,
         const std::string& value) {
  auto r = v->Mutate(file, MutationOp::kInsert, Slice(key), Slice(value));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
}

TEST(VolumeCacheTest, HitAfterInsertMissAfterEviction) {
  Volume v = SmallCacheVolume(2);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  Put(&v, "f", "a", "1");
  Put(&v, "f", "b", "2");

  // Both inserts are cached; reads hit without physical I/O.
  auto r = v.ReadRecord("f", Slice("a"));
  EXPECT_EQ(r.disc_ios, 0);
  EXPECT_EQ(v.cache_hits(), 1);
  EXPECT_EQ(v.cache_misses(), 0);

  // Inserting "c" evicts the LRU entry. "a" was just touched, so "b" goes.
  Put(&v, "f", "c", "3");
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);  // still resident
  EXPECT_GT(v.ReadRecord("f", Slice("b")).disc_ios, 0);  // evicted
  EXPECT_EQ(v.cache_misses(), 1);
}

TEST(VolumeCacheTest, LruEvictionFollowsTouchOrder) {
  Volume v = SmallCacheVolume(3);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  Put(&v, "f", "a", "1");
  Put(&v, "f", "b", "2");
  Put(&v, "f", "c", "3");
  // Touch order now c > b > a; re-touch "a" so "b" is coldest.
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);
  Put(&v, "f", "d", "4");  // evicts "b"
  EXPECT_EQ(v.ReadRecord("f", Slice("c")).disc_ios, 0);
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);
  EXPECT_EQ(v.ReadRecord("f", Slice("d")).disc_ios, 0);
  EXPECT_GT(v.ReadRecord("f", Slice("b")).disc_ios, 0);
}

TEST(VolumeCacheTest, SameKeyDifferentFilesAreDistinctEntries) {
  Volume v = SmallCacheVolume(8);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  ASSERT_TRUE(v.CreateFile("g", FileOrganization::kKeySequenced).ok());
  Put(&v, "f", "k", "from-f");
  // "g"'s record with the same key is NOT resident just because "f"'s is.
  Put(&v, "g", "other", "x");
  auto r = v.ReadRecord("g", Slice("k"));
  EXPECT_TRUE(r.status.IsNotFound());
  Put(&v, "g", "k", "from-g");
  EXPECT_EQ(v.ReadRecord("f", Slice("k")).disc_ios, 0);
  EXPECT_EQ(v.ReadRecord("g", Slice("k")).disc_ios, 0);
  EXPECT_EQ(ToString(v.ReadRecord("g", Slice("k")).value), "from-g");
}

TEST(VolumeCacheTest, DeleteAndUndoMaintainResidency) {
  Volume v = SmallCacheVolume(8);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  Put(&v, "f", "a", "1");
  // Delete drops the cache entry along with the record.
  auto del = v.Mutate("f", MutationOp::kDelete, Slice("a"), Slice());
  ASSERT_TRUE(del.status.ok());
  // Undo of the delete re-inserts and re-caches the before-image.
  auto undo = v.ApplyUndo("f", MutationOp::kDelete, Slice("a"), Slice(del.before));
  ASSERT_TRUE(undo.status.ok());
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);
  EXPECT_EQ(ToString(v.ReadRecord("f", Slice("a")).value), "1");

  // Undo of an insert physically removes the record and evicts it.
  Put(&v, "f", "b", "2");
  ASSERT_TRUE(v.ApplyUndo("f", MutationOp::kInsert, Slice("b"), Slice()).status.ok());
  EXPECT_TRUE(v.ReadRecord("f", Slice("b")).status.IsNotFound());
}

TEST(VolumeCacheTest, DropVolatileColdCache) {
  Volume v = SmallCacheVolume(8);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  Put(&v, "f", "a", "1");
  v.Flush();  // make the insert durable so DropVolatile keeps the record
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);
  const int64_t hits_before = v.cache_hits();

  v.DropVolatile();  // node failure: main memory (the cache) is gone

  auto r = v.ReadRecord("f", Slice("a"));
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.disc_ios, 0);  // cold cache: physical read required
  EXPECT_EQ(v.cache_hits(), hits_before);
  // And warm again after the miss.
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);
}

TEST(VolumeCacheTest, DropFilePurgesResidencyAndKeepsInternedId) {
  Volume v = SmallCacheVolume(8);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  const uint32_t id_before = v.CacheFileId("f");
  Put(&v, "f", "a", "old");
  EXPECT_EQ(v.ReadRecord("f", Slice("a")).disc_ios, 0);

  ASSERT_TRUE(v.DropFile("f").ok());
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  // The interned id is stable across the name's reuse...
  EXPECT_EQ(v.CacheFileId("f"), id_before);
  // ...and the re-created file does not inherit the old file's residency:
  // the record does not exist, stale bytes must not appear.
  EXPECT_TRUE(v.ReadRecord("f", Slice("a")).status.IsNotFound());
  Put(&v, "f", "a", "new");
  EXPECT_EQ(ToString(v.ReadRecord("f", Slice("a")).value), "new");

  // Unrelated files keep distinct ids.
  ASSERT_TRUE(v.CreateFile("g", FileOrganization::kKeySequenced).ok());
  EXPECT_NE(v.CacheFileId("g"), id_before);
}

TEST(VolumeCacheTest, HitMissCountersMatchStatsAccess) {
  Volume v = SmallCacheVolume(2);
  ASSERT_TRUE(v.CreateFile("f", FileOrganization::kKeySequenced).ok());
  Put(&v, "f", "a", "1");
  Put(&v, "f", "b", "2");
  Put(&v, "f", "c", "3");  // evicts "a"
  v.ReadRecord("f", Slice("b"));  // hit
  v.ReadRecord("f", Slice("c"));  // hit
  v.ReadRecord("f", Slice("a"));  // miss (physical read)
  EXPECT_EQ(v.cache_hits(), 2);
  EXPECT_EQ(v.cache_misses(), 1);
  EXPECT_GT(v.physical_reads(), 0);
}

// ---------------------------------------------------------------------------
// Drive schedule: read-either / write-both
// ---------------------------------------------------------------------------

TEST(DriveScheduleTest, ConcurrentReadsAlternateAcrossMirror) {
  Volume v("$T", {});
  const SimDuration service = Millis(10);
  // Two reads issued at the same instant overlap: each lands on its own
  // drive and both complete one service time later.
  auto r1 = v.ScheduleRead(0, service);
  auto r2 = v.ScheduleRead(0, service);
  EXPECT_NE(r1.drive, r2.drive);
  EXPECT_EQ(r1.complete, service);
  EXPECT_EQ(r2.complete, service);
  // A third read queues behind the earlier of the two.
  auto r3 = v.ScheduleRead(0, service);
  EXPECT_EQ(r3.complete, 2 * service);
  EXPECT_EQ(r3.queue_depth, 1);
  EXPECT_EQ(v.drive_reads(0) + v.drive_reads(1), 3);
}

TEST(DriveScheduleTest, WritesOccupyBothDrives) {
  Volume v("$T", {});
  const SimDuration service = Millis(10);
  auto w = v.ScheduleWrite(0, service);
  EXPECT_EQ(w.complete, service);
  // A read after a write waits for a mirror to free (both are busy).
  auto r = v.ScheduleRead(0, service);
  EXPECT_EQ(r.complete, 2 * service);
  EXPECT_EQ(v.drive_busy_time(0), 2 * service);
  EXPECT_EQ(v.drive_busy_time(1), service);
}

TEST(DriveScheduleTest, FailedDriveSerializesReads) {
  Volume v("$T", {});
  const SimDuration service = Millis(10);
  v.FailDrive(1);
  auto r1 = v.ScheduleRead(0, service);
  auto r2 = v.ScheduleRead(0, service);
  EXPECT_EQ(r1.drive, 0);
  EXPECT_EQ(r2.drive, 0);
  EXPECT_EQ(r2.complete, 2 * service);  // no mirror to overlap with
  EXPECT_EQ(v.drive_reads(1), 0);
}

TEST(DriveScheduleTest, IdleTimeIsNotAccumulated) {
  Volume v("$T", {});
  const SimDuration service = Millis(5);
  v.ScheduleRead(0, service);
  // Issued long after the first completes: starts immediately, queue empty.
  auto r = v.ScheduleRead(Millis(100), service);
  EXPECT_EQ(r.queue_depth, 0);
  EXPECT_EQ(r.complete, Millis(105));
}

}  // namespace
}  // namespace encompass::storage
