#include "sim/event_queue.h"

#include <cassert>

namespace encompass::sim {

EventId EventQueue::Schedule(SimTime when, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  ++live_count_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  // Only a still-pending event can be cancelled; a fired, cancelled, or
  // unknown id is a no-op (no tombstone, no live_count_ change).
  if (pending_.erase(id) == 0) return;
  cancelled_.insert(id);
  --live_count_;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? kNoDeadline : heap_.top().when;
}

std::function<void()> EventQueue::PopNext(SimTime* when) {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Event&>(heap_.top());
  *when = top.when;
  std::function<void()> fn = std::move(top.fn);
  pending_.erase(top.id);
  heap_.pop();
  --live_count_;
  return fn;
}

}  // namespace encompass::sim
