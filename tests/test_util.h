// Shared test helpers: a scriptable client process for driving request/reply
// protocols from tests, and small conveniences.

#ifndef ENCOMPASS_TESTS_TEST_UTIL_H_
#define ENCOMPASS_TESTS_TEST_UTIL_H_

#include <deque>

#include "os/cluster.h"
#include "os/process.h"

namespace encompass::testutil {

/// A test client that issues calls and records their outcomes. Outcome
/// objects live in a deque, so pointers stay valid as more calls are made.
class TestClient : public os::Process {
 public:
  struct Outcome {
    bool done = false;
    Status status;
    Bytes payload;
  };

  /// Issues a request carrying the given packed transid; returns a stable
  /// pointer to the eventual outcome.
  Outcome* CallRaw(const net::Address& dst, uint32_t tag, Bytes payload,
                   uint64_t transid = 0, os::CallOptions options = {}) {
    outcomes_.emplace_back();
    Outcome* out = &outcomes_.back();
    uint64_t saved = current_transid();
    set_current_transid(transid);
    Call(dst, tag, std::move(payload),
         [out](const Status& s, const net::Message& m) {
           out->done = true;
           out->status = s;
           out->payload = m.payload;
         },
         options);
    set_current_transid(saved);
    return out;
  }

  /// One-way send with an explicit transid.
  void SendRaw(const net::Address& dst, uint32_t tag, Bytes payload,
               uint64_t transid = 0) {
    uint64_t saved = current_transid();
    set_current_transid(transid);
    Send(dst, tag, std::move(payload));
    set_current_transid(saved);
  }

 private:
  std::deque<Outcome> outcomes_;
};

}  // namespace encompass::testutil

#endif  // ENCOMPASS_TESTS_TEST_UTIL_H_
