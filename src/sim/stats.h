// Named counters and latency histograms collected during a simulation run.
// Benchmarks and EXPERIMENTS.md rows are generated from these.
//
// Hot paths intern a metric once (RegisterCounter / RegisterHistogram) and
// then update through the returned MetricId, which indexes dense storage —
// no string hashing or map walk per event. The string-keyed calls remain
// for tests, reporting, and one-off call sites; they resolve the name on
// every call and are roughly an order of magnitude slower.
//
// Storage is sharded per event loop: each update lands in the shard of the
// loop executing the current event (shard 0 outside event execution), so
// parallel node loops never write the same cache line. Counter totals and
// merged histograms are only ever read between rounds (reporting, tests) and
// are exact regardless of how updates were interleaved, because sums and
// bucket merges are commutative. Registration is mutex-guarded: processes
// register metrics when they attach, which can happen on a worker thread
// during simulated recovery.

#ifndef ENCOMPASS_SIM_STATS_H_
#define ENCOMPASS_SIM_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/exec_context.h"

namespace encompass::sim {

class Stats;

/// Opaque handle to one registered metric. Handles stay valid for the
/// lifetime of the Stats object that issued them, across Clear().
class MetricId {
 public:
  MetricId() = default;
  bool valid() const { return index_ != kInvalid; }

 private:
  friend class Stats;
  explicit constexpr MetricId(uint32_t index) : index_(index) {}
  static constexpr uint32_t kInvalid = 0xffffffffu;
  uint32_t index_ = kInvalid;
};

/// Fixed-size log-bucket histogram: 64 linear sub-buckets per power-of-two
/// octave, so values below 128 are represented exactly and larger values
/// with <0.8% relative error. Min, max, mean, and count are exact; only
/// percentiles are bucket-approximate. O(1) Add, O(buckets) Percentile.
class Histogram {
 public:
  Histogram();

  void Add(int64_t v);
  size_t count() const { return count_; }
  int64_t Min() const { return count_ ? min_ : 0; }
  int64_t Max() const { return count_ ? max_ : 0; }
  int64_t Sum() const { return sum_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  /// p in [0, 100]. Returns 0 for an empty histogram; p<=0 yields Min and
  /// p>=100 yields Max, both exact.
  int64_t Percentile(double p) const;

  /// Adds every sample of `other` into this histogram. Exact for count, sum,
  /// min, and max; bucket-exact for percentiles. Commutative and
  /// associative, so shard merge order never matters.
  void Merge(const Histogram& other);

  void Clear();

 private:
  static constexpr int kSubBits = 6;          // 64 sub-buckets per octave
  static constexpr uint32_t kSub = 1u << kSubBits;
  // Values 0..63 land in the linear range; octaves 6..62 cover the rest of
  // the non-negative int64 domain (negatives clamp to bucket 0).
  static constexpr uint32_t kNumBuckets = kSub + (63 - kSubBits) * kSub;

  static uint32_t BucketFor(int64_t v);
  static int64_t BucketMidpoint(uint32_t b);

  std::vector<uint64_t> buckets_;  // sized kNumBuckets
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Registry of counters and histograms, keyed by dotted names
/// ("tmf.commits", "disc.op_ios", ...). Components register names once
/// (typically at attach/construction time) and update via MetricId.
class Stats {
 public:
  Stats();

  // --- Interned fast path -------------------------------------------------

  /// Registers (or finds) a counter; idempotent per name.
  MetricId RegisterCounter(const std::string& name);
  /// Registers (or finds) a histogram; idempotent per name.
  MetricId RegisterHistogram(const std::string& name);

  // Invalid handles (a process whose metrics were never registered) are
  // ignored: the guard is one well-predicted branch on the hot path.
  void Incr(MetricId id, int64_t delta = 1) {
    if (!id.valid()) return;
    std::vector<int64_t>& c = WriteShard().counters;
    if (id.index_ >= c.size()) c.resize(ResizeTo(c.size(), id.index_), 0);
    c[id.index_] += delta;
  }
  void Record(MetricId id, int64_t value) {
    if (id.valid()) WriteShard().histograms[id.index_].Add(value);
  }
  /// Merges a whole externally-accumulated histogram into `id` (used by the
  /// engine to publish metrics it keeps outside Stats during a run).
  void Merge(MetricId id, const Histogram& h) {
    if (id.valid() && h.count() > 0) WriteShard().histograms[id.index_].Merge(h);
  }
  /// Total across all shards.
  int64_t Counter(MetricId id) const;
  /// Merged view across all shards, rebuilt on each call; the reference is
  /// refreshed (not invalidated) by later calls.
  const Histogram& GetHistogram(MetricId id) const {
    return MergedAt(id.index_);
  }

  // --- String-keyed compatibility path ------------------------------------

  void Incr(const std::string& name, int64_t delta = 1) { Incr(RegisterCounter(name), delta); }
  void Record(const std::string& name, int64_t value) {
    Record(RegisterHistogram(name), value);
  }
  int64_t Counter(const std::string& name) const;
  /// Returns nullptr if no histogram with that name was ever registered.
  /// The pointer stays valid across later registrations and Clear(); its
  /// contents are refreshed on each Find/Get/histograms call.
  const Histogram* FindHistogram(const std::string& name) const;

  // --- Reporting ----------------------------------------------------------

  /// Snapshot of all counters with a nonzero total, name-sorted.
  std::map<std::string, int64_t> counters() const;
  /// Snapshot of all non-empty histograms (merged across shards),
  /// name-sorted.
  std::map<std::string, const Histogram*> histograms() const;

  /// Zeroes all values. Registrations (and outstanding MetricIds) survive.
  void Clear();

  /// Multi-line human-readable dump: all nonzero counters, then all
  /// non-empty histograms with n/min/mean/p50/p95/p99/max.
  std::string ToString() const;

  /// Grows the shard set to `n`. Called by the engine as node loops are
  /// created; never shrinks. Must not race with updates (it runs during
  /// topology setup, between rounds).
  void EnsureShards(size_t n);

 private:
  struct Shard {
    std::vector<int64_t> counters;  // dense by MetricId, grown on demand
    // Sparse by MetricId: only histograms actually recorded in this shard
    // are materialized (a Histogram is ~30 KB of buckets).
    std::unordered_map<uint32_t, Histogram> histograms;
  };

  static size_t ResizeTo(size_t size, uint32_t index) {
    size_t n = size < 16 ? 16 : size * 2;
    return n > index ? n : static_cast<size_t>(index) + 1;
  }

  Shard& WriteShard() {
    const internal::ExecContext* ec = internal::Exec();
    return (ec != nullptr && ec->stats == this) ? *shards_[ec->shard]
                                                : *shards_[0];
  }

  const Histogram& MergedAt(uint32_t index) const;

  mutable std::mutex reg_mu_;  // guards the name->id maps and name vectors
  std::unordered_map<std::string, uint32_t> counter_ids_;
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, uint32_t> histogram_ids_;
  std::vector<std::string> histogram_names_;

  std::vector<std::unique_ptr<Shard>> shards_;
  // Merge targets for reads; deque keeps FindHistogram pointers stable.
  mutable std::deque<Histogram> merged_;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_STATS_H_
