
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/encompass_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/encompass_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/file.cc" "src/storage/CMakeFiles/encompass_storage.dir/file.cc.o" "gcc" "src/storage/CMakeFiles/encompass_storage.dir/file.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/storage/CMakeFiles/encompass_storage.dir/partition.cc.o" "gcc" "src/storage/CMakeFiles/encompass_storage.dir/partition.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/storage/CMakeFiles/encompass_storage.dir/record.cc.o" "gcc" "src/storage/CMakeFiles/encompass_storage.dir/record.cc.o.d"
  "/root/repo/src/storage/volume.cc" "src/storage/CMakeFiles/encompass_storage.dir/volume.cc.o" "gcc" "src/storage/CMakeFiles/encompass_storage.dir/volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/encompass_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
