file(REMOVE_RECURSE
  "libencompass_net.a"
)
