// End-to-end tests of the ENCOMPASS application layer: server classes with
// dynamic server creation, the TCP interpreting terminal programs with the
// TMF verbs, transaction restart on deadlock, failure transparency (server
// and TCP CPU failures), and the query engine — all on top of the full
// TMF / DISCPROCESS / audit stack.

#include <gtest/gtest.h>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/query.h"
#include "encompass/server_class.h"
#include "encompass/tcp.h"
#include "test_util.h"

namespace encompass::app {
namespace {

using apps::banking::AccountKey;
using apps::banking::AddBankServerClass;
using apps::banking::BankRequest;
using apps::banking::BankServer;
using apps::banking::MakeTransferProgram;
using apps::banking::SeedAccounts;
using apps::banking::SumBalances;
using testutil::TestClient;

constexpr int kAccounts = 20;
constexpr int64_t kInitialBalance = 1000;

class EncompassTest : public ::testing::Test {
 protected:
  EncompassTest() : sim_(31), deploy_(&sim_) {
    NodeSpec n1;
    n1.id = 1;
    n1.node_config.num_cpus = 6;
    // Short deadlock-detection timeout keeps the contention tests fast.
    n1.disc_config.default_lock_timeout = Millis(100);
    n1.volumes = {VolumeSpec{"$DATA1", {FileSpec{"acct"}}, {}}};
    node1_ = deploy_.AddNode(n1);
    EXPECT_TRUE(deploy_.DefineFile("acct", 1, "$DATA1").ok());
    SeedAccounts(node1_->storage().volumes.at("$DATA1").get(), "acct", kAccounts,
                 kInitialBalance);
    router_ = AddBankServerClass(&deploy_, 1, "$SC.BANK", "acct");
    sim_.Run();
  }

  int64_t Sum() {
    return SumBalances(node1_->storage().volumes.at("$DATA1").get(), "acct");
  }

  Tcp* SpawnTcp(TcpConfig config, int cpu_a = 4, int cpu_b = 5) {
    auto pair = os::SpawnPair<Tcp>(node1_->node(), "$TCP1", cpu_a, cpu_b,
                                   std::move(config));
    sim_.Run();
    return pair.primary;
  }

  sim::Simulation sim_;
  Deployment deploy_;
  NodeDeployment* node1_;
  ServerClassRouter* router_;
};

TEST_F(EncompassTest, ServerHandlesRequestInTransaction) {
  auto* client = node1_->node()->Spawn<TestClient>(5);
  sim_.Run();
  // Begin a transaction, send a credit through the server class, commit.
  auto* begin = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  sim_.Run();
  ASSERT_TRUE(begin->status.ok());
  auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
  ASSERT_TRUE(transid.ok());

  auto* credit = client->CallRaw(net::Address(1, "$SC.BANK"), kServerRequest,
                                 BankRequest("credit", AccountKey(0), 500),
                                 transid->Pack());
  sim_.Run();
  ASSERT_TRUE(credit->status.ok());
  auto reply = storage::Record::Decode(Slice(credit->payload));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->Get("balance"), "1500");

  auto* end = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                              tmf::EncodeTransidPayload(*transid),
                              transid->Pack());
  sim_.Run();
  EXPECT_TRUE(end->status.ok());
  EXPECT_EQ(Sum(), kAccounts * kInitialBalance + 500);
}

TEST_F(EncompassTest, ServerClassGrowsUnderLoadAndReapsWhenIdle) {
  auto* client = node1_->node()->Spawn<TestClient>(5);
  sim_.Run();
  EXPECT_EQ(router_->server_count(), 1);  // min_servers
  // A burst of non-transactional reads saturates the single server.
  std::vector<TestClient::Outcome*> outcomes;
  for (int i = 0; i < 24; ++i) {
    outcomes.push_back(client->CallRaw(net::Address(1, "$SC.BANK"),
                                       kServerRequest,
                                       BankRequest("read", AccountKey(i % 5))));
  }
  sim_.RunFor(Millis(200));
  EXPECT_GT(router_->server_count(), 1);  // grew under load
  sim_.Run();
  for (auto* o : outcomes) EXPECT_TRUE(o->done);
  // More than the initial server was created during the burst.
  EXPECT_GT(sim_.GetStats().Counter("serverclass.spawned"), 1);
  // Idle long enough and the class shrinks back to the floor.
  sim_.RunFor(Seconds(30));
  EXPECT_EQ(router_->server_count(), 1);
  EXPECT_GT(sim_.GetStats().Counter("serverclass.reaped"), 0);
}

TEST_F(EncompassTest, TcpRunsTransferProgramsToCompletion) {
  auto program = MakeTransferProgram(1, "$SC.BANK", kAccounts, 50);
  TcpConfig cfg;
  cfg.programs = {{"transfer", &program}};
  Tcp* tcp = SpawnTcp(cfg);
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(tcp->AttachTerminal("term" + std::to_string(t), "transfer", 5));
  }
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 20u);
  EXPECT_EQ(tcp->programs_failed(), 0u);
  EXPECT_EQ(tcp->transactions_committed(), 20u);
  // Money is conserved: every debit paired with its credit atomically.
  EXPECT_EQ(Sum(), kAccounts * kInitialBalance);
  EXPECT_EQ(sim_.GetStats().Counter("tmf.illegal_transitions"), 0);
}

TEST_F(EncompassTest, DeadlocksResolveViaTimeoutAndRestart) {
  // Few accounts + many concurrent terminals = lock cycles. The DISCPROCESS
  // breaks them by timeout; servers reply "restart"; TCPs re-run from
  // BEGIN-TRANSACTION. Everything completes and money is conserved.
  auto program = MakeTransferProgram(1, "$SC.BANK", /*accounts=*/3, 10);
  TcpConfig cfg;
  cfg.programs = {{"transfer", &program}};
  cfg.restart_limit = 500;
  Tcp* tcp = SpawnTcp(cfg);
  for (int t = 0; t < 8; ++t) {
    ASSERT_TRUE(tcp->AttachTerminal("term" + std::to_string(t), "transfer", 10));
  }
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 80u);
  EXPECT_EQ(tcp->programs_failed(), 0u);
  EXPECT_EQ(Sum(), kAccounts * kInitialBalance);
}

TEST_F(EncompassTest, ServerCpuFailureAbortsAndRestartsTransactions) {
  auto program = MakeTransferProgram(1, "$SC.BANK", kAccounts, 50);
  TcpConfig cfg;
  cfg.programs = {{"transfer", &program}};
  cfg.restart_limit = 20;
  cfg.send_timeout = Millis(500);
  Tcp* tcp = SpawnTcp(cfg);
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(tcp->AttachTerminal("term" + std::to_string(t), "transfer", 10));
  }
  // Fail a CPU hosting bank servers mid-run (router places them on CPUs
  // 0..3 round-robin; CPU 0 also hosts other services whose backups take
  // over). Transactions in flight abort and restart transparently.
  sim_.RunFor(Millis(40));
  node1_->node()->FailCpu(0);
  sim_.RunFor(Seconds(60));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 40u);
  EXPECT_EQ(tcp->programs_failed(), 0u);
  EXPECT_EQ(Sum(), kAccounts * kInitialBalance);
}

TEST_F(EncompassTest, TcpTakeoverRestartsInFlightTransactions) {
  auto program = MakeTransferProgram(1, "$SC.BANK", kAccounts, 50);
  TcpConfig cfg;
  cfg.programs = {{"transfer", &program}};
  cfg.restart_limit = 20;
  auto pair = os::SpawnPair<Tcp>(node1_->node(), "$TCP1", 4, 5, cfg);
  sim_.Run();
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(pair.primary->AttachTerminal("term" + std::to_string(t),
                                             "transfer", 10));
  }
  sim_.RunFor(Millis(30));  // some programs mid-flight
  node1_->node()->FailCpu(4);  // TCP primary dies
  sim_.RunFor(Seconds(60));
  sim_.Run();
  ASSERT_TRUE(pair.backup->IsPrimary());
  // The terminal user never re-entered input; all programs completed on the
  // new primary (iterations done before the failure counted on the old one).
  EXPECT_GT(pair.backup->programs_completed(), 0u);
  EXPECT_EQ(pair.backup->programs_failed(), 0u);
  EXPECT_GT(sim_.GetStats().Counter("tcp.takeover_restarts"), 0);
  EXPECT_EQ(Sum(), kAccounts * kInitialBalance);
  // No transactions remain in flight.
  EXPECT_EQ(node1_->tmp()->ActiveTransactionCount(), 0u);
}

TEST_F(EncompassTest, VoluntaryAbortProgramLeavesNoTrace) {
  ScreenProgram program("audit-then-abort");
  program.BeginTransaction()
      .Send(1, "$SC.BANK",
            [](const Fields&) { return BankRequest("credit", AccountKey(0), 777); })
      .AbortTransaction();
  TcpConfig cfg;
  cfg.programs = {{"p", &program}};
  Tcp* tcp = SpawnTcp(cfg);
  ASSERT_TRUE(tcp->AttachTerminal("term0", "p", 1));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 1u);
  EXPECT_EQ(Sum(), kAccounts * kInitialBalance);  // credit backed out
  EXPECT_GT(sim_.GetStats().Counter("tmf.voluntary_aborts"), 0);
}

TEST_F(EncompassTest, QueryEngineSelectsAndAggregates) {
  auto* client = node1_->node()->Spawn<TestClient>(5);
  sim_.Run();
  QueryEngine query(client, &deploy_.catalog());

  Status status;
  std::vector<Row> rows;
  query.Select("acct", {}, 0, [&](const Status& s, std::vector<Row> r) {
    status = s;
    rows = std::move(r);
  });
  sim_.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(rows.size(), static_cast<size_t>(kAccounts));
  EXPECT_EQ(ToString(rows[0].key), AccountKey(0));

  double total = -1;
  query.Compute("acct", {}, "balance", Aggregate::kSum,
                [&](const Status& s, double v) {
                  status = s;
                  total = v;
                });
  sim_.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_DOUBLE_EQ(total, kAccounts * 1000.0);

  // Predicate filtering.
  query.Select("acct", {Predicate{"balance", CompareOp::kGt, "999"}}, 0,
               [&](const Status& s, std::vector<Row> r) {
                 status = s;
                 rows = std::move(r);
               });
  sim_.Run();
  EXPECT_EQ(rows.size(), static_cast<size_t>(kAccounts));

  query.Select("acct", {Predicate{"balance", CompareOp::kLt, "0"}}, 0,
               [&](const Status& s, std::vector<Row> r) {
                 status = s;
                 rows = std::move(r);
               });
  sim_.Run();
  EXPECT_TRUE(rows.empty());
}

TEST_F(EncompassTest, QueryStreamsMultipleScanBatches) {
  // More records than one 64-record scan batch: the engine must chain
  // batches without gaps or duplicates.
  auto* vol = node1_->storage().volumes.at("$DATA1").get();
  storage::FileOptions opt;
  opt.audited = false;
  ASSERT_TRUE(
      vol->CreateFile("big", storage::FileOrganization::kKeySequenced, opt).ok());
  for (int i = 0; i < 300; ++i) {
    storage::Record r;
    r.Set("n", std::to_string(i));
    char key[16];
    snprintf(key, sizeof(key), "r%05d", i);
    vol->Mutate("big", storage::MutationOp::kInsert, Slice(key, 6),
                Slice(r.Encode()));
  }
  vol->Flush();
  ASSERT_TRUE(deploy_.DefineFile("big", 1, "$DATA1").ok());

  auto* client = node1_->node()->Spawn<TestClient>(5);
  sim_.Run();
  QueryEngine query(client, &deploy_.catalog());
  Status status;
  std::vector<Row> rows;
  query.Select("big", {}, 0, [&](const Status& s, std::vector<Row> r) {
    status = s;
    rows = std::move(r);
  });
  sim_.Run();
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(rows.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(rows[i].record.Get("n"), std::to_string(i));
  }
  EXPECT_GE(sim_.GetStats().Counter("disc.scan_batches"), 5);

  // LIMIT stops mid-batch.
  query.Select("big", {}, 10, [&](const Status& s, std::vector<Row> r) {
    status = s;
    rows = std::move(r);
  });
  sim_.Run();
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(EncompassTest, QueryScansPartitionedFileAcrossNodes) {
  // "stock" is partitioned: keys < "m" on node 1, the rest on node 2.
  NodeSpec n2;
  n2.id = 2;
  n2.volumes = {VolumeSpec{"$DATA2", {FileSpec{"stock"}}, {}}};
  NodeDeployment* node2 = deploy_.AddNode(n2);
  deploy_.LinkAll();
  // Physical partition on node 1 lives on $DATA1.
  storage::FileOptions opt;
  opt.audited = true;
  ASSERT_TRUE(node1_->storage()
                  .volumes.at("$DATA1")
                  ->CreateFile("stock", storage::FileOrganization::kKeySequenced,
                               opt)
                  .ok());
  storage::FileDefinition def;
  def.name = "stock";
  def.partitions.AddPartition(ToBytes("m"), 1, "$DATA1");
  def.partitions.AddPartition({}, 2, "$DATA2");
  ASSERT_TRUE(deploy_.DefinePartitionedFile(def).ok());

  auto seed = [](storage::Volume* vol, const std::string& key, int qty) {
    storage::Record r;
    r.Set("qty", std::to_string(qty));
    vol->Mutate("stock", storage::MutationOp::kInsert, Slice(key),
                Slice(r.Encode()));
    vol->Flush();
  };
  seed(node1_->storage().volumes.at("$DATA1").get(), "bolt", 5);
  seed(node1_->storage().volumes.at("$DATA1").get(), "gear", 7);
  seed(node2->storage().volumes.at("$DATA2").get(), "nut", 11);
  seed(node2->storage().volumes.at("$DATA2").get(), "washer", 13);

  auto* client = node1_->node()->Spawn<TestClient>(5);
  sim_.Run();
  QueryEngine query(client, &deploy_.catalog());
  Status status;
  std::vector<Row> rows;
  query.Select("stock", {}, 0, [&](const Status& s, std::vector<Row> r) {
    status = s;
    rows = std::move(r);
  });
  sim_.Run();
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(rows.size(), 4u);  // both partitions, in key order
  EXPECT_EQ(ToString(rows[0].key), "bolt");
  EXPECT_EQ(ToString(rows[3].key), "washer");

  double total = 0;
  query.Compute("stock", {}, "qty", Aggregate::kSum,
                [&](const Status&, double v) { total = v; });
  sim_.Run();
  EXPECT_DOUBLE_EQ(total, 36.0);
}

}  // namespace
}  // namespace encompass::app
