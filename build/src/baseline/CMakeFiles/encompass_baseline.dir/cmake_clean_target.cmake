file(REMOVE_RECURSE
  "libencompass_baseline.a"
)
