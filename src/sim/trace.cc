#include "sim/trace.h"

#include <sstream>

namespace encompass::sim {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMsgSend:
      return "msg.send";
    case TraceEventKind::kMsgDeliver:
      return "msg.deliver";
    case TraceEventKind::kTxnState:
      return "txn.state";
    case TraceEventKind::kPhase1Start:
      return "phase1.start";
    case TraceEventKind::kPhase1Done:
      return "phase1.done";
    case TraceEventKind::kCommitRecord:
      return "commit.record";
    case TraceEventKind::kPhase2Queued:
      return "phase2.queued";
    case TraceEventKind::kPhase2Recv:
      return "phase2.recv";
    case TraceEventKind::kAbortStart:
      return "abort.start";
    case TraceEventKind::kAbortDone:
      return "abort.done";
    case TraceEventKind::kLockAcquire:
      return "lock.acquire";
    case TraceEventKind::kLockRelease:
      return "lock.release";
    case TraceEventKind::kAuditForce:
      return "audit.force";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  std::ostringstream out;
  out << "t=" << time << " node=" << node << " span=" << span;
  if (parent != 0) out << "<-" << parent;
  out << " " << TraceEventKindName(kind) << " a=" << a << " b=" << b;
  return out.str();
}

TraceLog::TraceLog(size_t capacity) : ring_(capacity) {}

void TraceLog::Record(const TraceEvent& e) {
  if (count_ == ring_.size()) {
    dropped_++;
  } else {
    count_++;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
}

void TraceLog::Clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  // next_span_ deliberately keeps counting: span ids stay unique per run.
}

std::vector<TraceEvent> TraceLog::Events(uint64_t transid) const {
  std::vector<TraceEvent> out;
  const size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (size_t i = 0; i < count_; ++i) {
    const TraceEvent& e = ring_[(start + i) % ring_.size()];
    if (e.transid == transid) out.push_back(e);
  }
  return out;
}

std::string TraceLog::Dump(uint64_t transid) const {
  std::ostringstream out;
  out << "trace transid=" << transid;
  if (dropped_ > 0) out << " (ring dropped " << dropped_ << " oldest events)";
  out << "\n";
  for (const TraceEvent& e : Events(transid)) {
    out << "  " << e.ToString() << "\n";
  }
  return out.str();
}

}  // namespace encompass::sim
