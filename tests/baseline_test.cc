// Tests for the conventional WAL baseline engine: commit durability, abort,
// crash-loses-in-flight-work, halt-and-restart recovery (redo + undo), and
// the force-per-update ablation.

#include <gtest/gtest.h>

#include "baseline/wal_engine.h"

namespace encompass::baseline {
namespace {

TEST(WalEngineTest, CommitThenCrashIsDurable) {
  WalEngine engine;
  SimDuration cost = 0;
  TxnId t = engine.Begin();
  EXPECT_TRUE(engine.Update(t, "a", "1", &cost).ok());
  EXPECT_TRUE(engine.Commit(t, &cost).ok());
  EXPECT_GT(cost, 0);
  engine.Crash();
  EXPECT_FALSE(engine.available());
  engine.Restart();
  EXPECT_TRUE(engine.available());
  auto v = engine.DurableValue("a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
}

TEST(WalEngineTest, UncommittedWorkLostOnCrash) {
  WalEngine engine;
  SimDuration cost = 0;
  TxnId t1 = engine.Begin();
  engine.Update(t1, "a", "committed", &cost);
  engine.Commit(t1, &cost);
  TxnId t2 = engine.Begin();
  engine.Update(t2, "a", "dirty", &cost);
  engine.Update(t2, "b", "dirty", &cost);
  engine.Crash();
  engine.Restart();
  EXPECT_EQ(*engine.DurableValue("a"), "committed");
  EXPECT_TRUE(engine.DurableValue("b").status().IsNotFound());
}

TEST(WalEngineTest, LoserUndoneEvenAfterStealCheckpoint) {
  WalEngine engine;
  SimDuration cost = 0;
  TxnId t0 = engine.Begin();
  engine.Update(t0, "a", "base", &cost);
  engine.Commit(t0, &cost);
  TxnId t = engine.Begin();
  engine.Update(t, "a", "stolen-dirty", &cost);
  // The checkpoint flushes the dirty page of the in-flight transaction
  // ("steal"); the WAL rule protects it via the forced before-image.
  engine.TakeCheckpoint();
  engine.Crash();
  engine.Restart();
  EXPECT_EQ(*engine.DurableValue("a"), "base");
}

TEST(WalEngineTest, AbortRestoresBeforeImages) {
  WalEngine engine;
  SimDuration cost = 0;
  TxnId t0 = engine.Begin();
  engine.Update(t0, "a", "100", &cost);
  engine.Commit(t0, &cost);
  TxnId t = engine.Begin();
  engine.Update(t, "a", "999", &cost);
  engine.Update(t, "b", "new", &cost);
  EXPECT_TRUE(engine.Abort(t, &cost).ok());
  TxnId reader = engine.Begin();
  SimDuration c2 = 0;
  EXPECT_EQ(*engine.Read(reader, "a", &c2), "100");
  EXPECT_TRUE(engine.Read(reader, "b", &c2).status().IsNotFound());
}

TEST(WalEngineTest, ActiveTransactionsDieWithTheSystem) {
  WalEngine engine;
  SimDuration cost = 0;
  TxnId t = engine.Begin();
  engine.Update(t, "a", "1", &cost);
  EXPECT_EQ(engine.active_transactions(), 1u);
  engine.Crash();
  EXPECT_EQ(engine.active_transactions(), 0u);
  engine.Restart();
  // The old handle is dead.
  EXPECT_TRUE(engine.Commit(t, &cost).IsInvalidArgument());
}

TEST(WalEngineTest, RestartCostGrowsWithLogSinceCheckpoint) {
  WalEngineConfig cfg;
  WalEngine small(cfg), large(cfg);
  SimDuration cost = 0;
  auto run = [&](WalEngine& e, int txns) {
    for (int i = 0; i < txns; ++i) {
      TxnId t = e.Begin();
      e.Update(t, "k" + std::to_string(i % 100), std::to_string(i), &cost);
      e.Commit(t, &cost);
    }
  };
  run(small, 10);
  run(large, 1000);
  small.Crash();
  large.Crash();
  SimDuration small_outage = small.Restart();
  SimDuration large_outage = large.Restart();
  EXPECT_GT(large_outage, small_outage * 5);
}

TEST(WalEngineTest, CheckpointBoundsRecovery) {
  WalEngine engine;
  SimDuration cost = 0;
  for (int i = 0; i < 500; ++i) {
    TxnId t = engine.Begin();
    engine.Update(t, "k" + std::to_string(i), "v", &cost);
    engine.Commit(t, &cost);
  }
  engine.TakeCheckpoint();
  EXPECT_EQ(engine.log_records_since_checkpoint(), 0u);
  engine.Crash();
  SimDuration outage = engine.Restart();
  // Nothing to scan: outage is just the post-restart checkpoint overhead.
  EXPECT_LT(outage, Millis(100));
  EXPECT_EQ(*engine.DurableValue("k499"), "v");
}

TEST(WalEngineTest, ForceEachUpdateAblationCostsMore) {
  WalEngineConfig lazy_cfg;
  WalEngineConfig eager_cfg;
  eager_cfg.force_log_each_update = true;
  WalEngine lazy(lazy_cfg), eager(eager_cfg);
  SimDuration lazy_cost = 0, eager_cost = 0;
  auto run = [](WalEngine& e, SimDuration* cost) {
    TxnId t = e.Begin();
    for (int i = 0; i < 10; ++i) {
      e.Update(t, "k" + std::to_string(i), "v", cost);
    }
    e.Commit(t, cost);
  };
  run(lazy, &lazy_cost);
  run(eager, &eager_cost);
  EXPECT_GT(eager_cost, lazy_cost * 5);  // 11 forces vs 1
  EXPECT_EQ(lazy.forces(), 1u);
  EXPECT_EQ(eager.forces(), 11u);
}

TEST(WalEngineTest, ReadYourOwnWrites) {
  WalEngine engine;
  SimDuration cost = 0;
  TxnId t = engine.Begin();
  engine.Update(t, "a", "mine", &cost);
  EXPECT_EQ(*engine.Read(t, "a", &cost), "mine");
}

}  // namespace
}  // namespace encompass::baseline
