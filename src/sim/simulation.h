// Simulation: the deterministic run context shared by every simulated
// component — clocks, per-node event loops, PRNG streams, and statistics.
//
// The engine is a conservative parallel discrete-event simulator (PDES) with
// an exact single-threaded oracle. Every simulated node owns an event loop
// (clock + event queue + PRNG stream); loop 0 is the global loop for setup
// code, fault injection, and topology events. Events carry a total-order key
// (time, origin node, origin sequence) assigned at schedule time, so "the
// order events fire in" is a property of the simulation's history, not of
// the thread interleaving that executes it.
//
// `parallel_workers` selects among three engines that produce byte-identical
// same-seed traces and metrics:
//   0  — the classic single-queue engine: every event lands on loop 0 in one
//        global schedule order (the pre-PDES behavior, bit-for-bit);
//   1  — per-node loops multiplexed on the calling thread in canonical key
//        order (the PDES oracle);
//   N  — a pool of N threads executing node loops round-by-round under
//        conservative synchronization: loop i may run strictly below
//        min(cap, min over other loops j of E_j + L(j→i)), where E_j is
//        loop j's next event time and L(j→i) is the lookahead from j to i.
//        No rollback is ever needed because node j can only affect node i
//        at least L(j→i) in the future (Network posts cross-node work via
//        PostToNode, never with a shorter delay).
//
// Lookahead is per ordered pair of nodes: Network::AddLink(a, b, l) feeds an
// incremental all-pairs table of least path latencies, so a 50ms WAN link in
// one corner of the cluster no longer throttles two nodes joined by a 1ms
// LAN link, and unlinked pairs contribute no bound at all. The table is a
// static lower bound — it only ever admits latencies that some declared-link
// path could achieve, so it stays valid when links flap down or routing
// takes longer paths. The scalar NoteLinkLatency(l) overload remains as a
// uniform all-pairs floor for topology-free tests and benches.
//
// Coordinator bookkeeping is incremental: a tournament tree (MinTree) over
// the per-loop next-event keys replaces the every-round full rescan, and
// cross-loop posts travel through per-sender outbox lanes — written only by
// the sending loop's worker, drained only by the coordinator between rounds
// — so concurrent posters never contend on a lock.

#ifndef ENCOMPASS_SIM_SIMULATION_H_
#define ENCOMPASS_SIM_SIMULATION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "sim/event_queue.h"
#include "sim/exec_context.h"
#include "sim/min_tree.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace encompass::sim {

/// One per-node event loop: its own clock, event queue, and PRNG stream.
/// In parallel mode cross-node posts made during a round are buffered in the
/// *sender's* outbox lanes (one per destination shard) rather than a locked
/// inbox on the receiver: each lane has exactly one writer (the sending
/// loop's worker), and the coordinator drains lanes between rounds (safe
/// because a cross-node post is always at least one link lookahead in the
/// future, past every horizon granted in the round).
struct NodeLoop {
  NodeLoop(uint16_t node_id, uint32_t shard_index, uint64_t rng_seed)
      : node(node_id), shard(shard_index), queue(node_id), rng(rng_seed) {}

  const uint16_t node;
  const uint32_t shard;  // index into Simulation::loops_ and the stat shards
  SimTime now = 0;
  EventQueue queue;
  encompass::Random rng;
  uint64_t executed = 0;
  SimTime horizon = kNoDeadline;  // exclusive execution bound, current round

  struct Post {
    EventKey key;
    uint16_t exec_node;
    EventFn fn;
  };
  // outbox[d] buffers this loop's in-round posts to destination shard d;
  // outbox_dsts lists the non-empty lanes so draining skips the rest.
  std::vector<std::vector<Post>> outbox;
  std::vector<uint32_t> outbox_dsts;
};

/// One deterministic simulated world. All simulated components hold a
/// pointer to their Simulation; nothing in the library touches wall-clock
/// time or global randomness.
class Simulation {
 public:
  /// `parallel_workers` selects the engine; see the file comment. All modes
  /// produce byte-identical same-seed output.
  explicit Simulation(uint64_t seed = 1, int parallel_workers = 0);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Inside event execution: the executing event's time (the owning loop's
  /// clock). Outside: the global high-water clock.
  SimTime Now() const {
    const internal::ExecContext* ec = internal::Exec();
    if (ec != nullptr && ec->sim == this) return ec->key.time;
    return now_;
  }
  encompass::Random& Rng() { return rng_; }

  /// Per-node PRNG stream, derived deterministically from (seed, node).
  /// Components attribute their draws to the node the drawing work belongs
  /// to, so the values a node sees depend only on that node's local draw
  /// order — never on how events from different nodes interleave globally.
  encompass::Random& RngFor(uint16_t node) { return EnsureLoop(node)->rng; }

  /// The seed this simulation was constructed with. Components deriving
  /// their own deterministic schedules (e.g. recovery retry jitter) fold it
  /// in so every derived stream replays bit-identically per seed.
  uint64_t seed() const { return seed_; }

  Stats& GetStats() { return stats_; }
  TraceLog& GetTrace() { return trace_; }

  /// Appends one causal trace event stamped with the current simulated time.
  /// No-op when tracing is disabled or the context carries no transaction.
  void RecordTrace(TraceEventKind kind, const TraceContext& ctx, uint16_t node,
                   uint32_t a = 0, uint32_t b = 0, uint32_t parent = 0) {
    if (!trace_.enabled() || !ctx.active()) return;
    TraceEvent e;
    e.time = Now();
    e.transid = ctx.transid;
    e.span = ctx.span;
    e.parent = parent;
    e.kind = kind;
    e.node = node;
    e.a = a;
    e.b = b;
    trace_.Record(e);
  }

  /// Schedules `fn` to run `delay` microseconds from now (>= 0), on the
  /// loop of the node whose event is executing (loop 0 outside events).
  EventId After(SimDuration delay, EventFn fn);

  /// Schedules `fn` at an absolute time (clamped to now); same loop
  /// attribution as After.
  EventId At(SimTime when, EventFn fn);

  /// Schedules `fn` on `node`'s loop explicitly. Used where the OS layer
  /// schedules work for a node from outside that node's own event (process
  /// adoption, CPU regroup, message delivery hand-off).
  EventId AfterOn(uint16_t node, SimDuration delay, EventFn fn);
  EventId AtOn(uint16_t node, SimTime when, EventFn fn);

  /// Cross-node channel edge: schedules `fn` on `dst`'s loop, keyed with the
  /// *sender's* (origin, seq) stamp so deliveries fire in send order at any
  /// worker count. The only legal way for one node's event to schedule onto
  /// another running loop; `delay` must be at least the sender→dst lookahead
  /// (true for every network latency by construction). Not cancellable.
  void PostToNode(uint16_t dst, SimDuration delay, EventFn fn);

  void Cancel(EventId id);

  /// Runs one event in canonical order. Returns false if no event pending.
  bool Step();

  /// Runs events until none are pending or `max_events` have fired.
  /// Returns the number of events processed.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances every clock to
  /// exactly `deadline` (even if no event fired).
  void RunUntil(SimTime deadline);

  /// RunUntil(Now() + d).
  void RunFor(SimDuration d) { RunUntil(Now() + d); }

  bool Idle() const;
  size_t PendingEvents() const;
  uint64_t ExecutedEvents() const;

  int parallel_workers() const { return parallel_workers_; }

  /// Creates `node`'s loop (idempotent). Called by Network::AddNode so every
  /// simulated node has its loop before traffic starts.
  void EnsureNode(uint16_t node) { EnsureLoop(node); }

  /// Declares a link of `latency` between nodes `a` and `b` for lookahead
  /// purposes. Called by Network::AddLink; relaxes the all-pairs least-path
  /// latency table, which lower-bounds how soon any event on one node can
  /// affect another.
  void NoteLinkLatency(uint16_t a, uint16_t b, SimDuration latency);

  /// Uniform fallback: shrinks the all-pairs lookahead floor to `latency`
  /// if smaller. For call sites with no topology to declare.
  void NoteLinkLatency(SimDuration latency) {
    if (latency > 0 && latency < uniform_lookahead_) {
      uniform_lookahead_ = latency;
    }
  }

  /// Conservative bound on how soon an event on `src` can affect `dst`:
  /// min(uniform floor, least declared-link path latency src→dst).
  /// kNoDeadline if neither bound applies (the pair cannot interact).
  SimDuration LookaheadBetween(uint16_t src, uint16_t dst) const;

  /// Smallest pairwise lookahead (the old scalar view; tests/benches only).
  SimDuration lookahead() const;

  /// Publishes the engine's coordinator metrics (sim.rounds,
  /// sim.ready_loops, sim.inbox_posts counters and the sim.horizon_width
  /// histogram, horizon widths in µs) into GetStats(). The engine keeps
  /// these outside Stats during the run because they measure the *engine
  /// configuration*, not the simulated workload: folding them in eagerly
  /// would break byte-identity of Stats dumps across worker counts.
  /// Call between runs/rounds only. Idempotent-ish: counters publish deltas,
  /// the histogram is merged once per accumulation.
  void PublishEngineMetrics();

 private:
  enum class Mode { kLegacy, kSingleLoop, kParallel };

  // EventIds pack (loop shard << kSeqBits) | local id, where the local id is
  // the queue's (generation << slot-bits) | slot stamp.
  static constexpr int kSeqBits = EventQueue::kSlotBits + EventQueue::kGenBits;

  NodeLoop* EnsureLoop(uint16_t node);
  uint16_t CtxNode() const;
  EventId ScheduleOn(uint16_t node, SimTime when, EventFn fn);
  void ExecOne(NodeLoop* loop);
  void DrainOutboxes();
  void RunUntilSerial(SimTime deadline);
  void RunUntilParallel(SimTime deadline);
  void RunLoopTo(NodeLoop* loop, SimTime horizon);
  void StartWorkers();
  void WorkerMain();
  void ClaimLoop(uint64_t round);

  // --- incremental next-event tracking (coordinator/serial thread only) ----
  // Loops whose queue head may have changed are flagged dirty; RefreshDirty
  // re-reads just those heads into the tournament tree. Leaf 0 stays at +∞
  // permanently: the global loop is consulted directly where it matters, so
  // the tree's min ranges over node loops only.
  void MarkDirty(uint32_t shard) {
    if (shard == 0 || dirty_[shard]) return;
    dirty_[shard] = 1;
    dirty_list_.push_back(shard);
  }
  void RefreshDirty() {
    for (uint32_t s : dirty_list_) {
      dirty_[s] = 0;
      tree_.Set(s, loops_[s]->queue.NextKey());
    }
    dirty_list_.clear();
  }

  // --- per-pair lookahead --------------------------------------------------
  SimTime& Dist(size_t i, size_t j) { return dist_[i * dist_n_ + j]; }
  SimTime DistAt(size_t i, size_t j) const {
    return (i < dist_n_ && j < dist_n_) ? dist_[i * dist_n_ + j] : kNoDeadline;
  }
  void GrowDist(size_t n);
  SimDuration LookaheadShard(uint32_t src_shard, uint32_t dst_shard) const {
    const SimTime d = DistAt(src_shard, dst_shard);
    return d < uniform_lookahead_ ? d : uniform_lookahead_;
  }

  Mode mode_;
  SimTime now_ = 0;
  uint64_t seed_;
  int parallel_workers_;
  encompass::Random rng_;

  SimDuration uniform_lookahead_ = kNoDeadline;  // scalar all-pairs floor
  bool per_link_ = false;       // any per-pair latency declared?
  std::vector<SimTime> dist_;   // least path latency, dist_n_ x dist_n_ shards
  std::vector<SimTime> echo_;   // per shard: least round trip to any peer
  size_t dist_n_ = 0;

  std::vector<std::unique_ptr<NodeLoop>> loops_;  // [0] is the global loop
  std::unordered_map<uint16_t, uint32_t> loop_index_;  // node id -> shard

  MinTree tree_;                     // next-event keys of node loops (1..n)
  std::vector<uint8_t> dirty_;       // per-shard "head may have moved" flag
  std::vector<uint32_t> dirty_list_; // shards with dirty_ set

  Stats stats_;
  TraceLog trace_;

  // --- engine metrics (coordinator-only; published on demand) --------------
  uint64_t metric_rounds_ = 0;       // parallel rounds run
  uint64_t metric_ready_loops_ = 0;  // sum of ready-set sizes over rounds
  uint64_t metric_posts_ = 0;        // cross-loop posts buffered via outboxes
  Histogram horizon_width_;          // granted horizon minus next-event time
  uint64_t published_rounds_ = 0;    // deltas already pushed into stats_
  uint64_t published_ready_loops_ = 0;
  uint64_t published_posts_ = 0;
  bool horizon_published_ = false;

  // --- worker pool (kParallel only; threads start lazily) -----------------
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;  // guards round_seq_/next_/pending_, in_round_, stop_
  std::condition_variable pool_cv_;   // round published / stop
  std::condition_variable done_cv_;   // round_pending_ reached zero
  // ready_ is rebuilt by the coordinator between rounds; workers only read
  // it inside ClaimLoop with in_round_ set, checked under pool_mu_.
  std::vector<NodeLoop*> ready_;      // loops of the current round
  size_t round_next_ = 0;             // next unclaimed ready_ index
  size_t round_pending_ = 0;
  uint64_t round_seq_ = 0;
  bool stop_ = false;
  bool in_round_ = false;  // written only while workers are quiescent
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_SIMULATION_H_
