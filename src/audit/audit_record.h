// Audit records: the before/after images of logical data base record
// updates that TMF writes to distributed audit trails, plus the transaction
// completion records (commit/abort) of the Monitor Audit Trail.

#ifndef ENCOMPASS_AUDIT_AUDIT_RECORD_H_
#define ENCOMPASS_AUDIT_AUDIT_RECORD_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/transid.h"
#include "storage/file.h"

namespace encompass::audit {

/// One logical data base update: before-image (for transaction backout) and
/// after-image (for ROLLFORWARD).
struct AuditRecord {
  Transid transid;
  std::string volume;  ///< disc volume of residence ("$DATA1")
  std::string file;
  storage::MutationOp op = storage::MutationOp::kInsert;
  Bytes key;
  Bytes before;        ///< empty for inserts
  Bytes after;         ///< empty for deletes
  uint64_t lsn = 0;    ///< assigned when appended to a trail

  Bytes Encode() const;
  static Result<AuditRecord> Decode(Slice* in);
};

/// Transaction completion status recorded in the Monitor Audit Trail.
enum class Completion : uint8_t {
  kCommitted = 0,
  kAborted = 1,
};

/// Monitor Audit Trail entry. "A transaction commits at the time its commit
/// record is written to the Monitor Audit Trail."
struct CompletionRecord {
  Transid transid;
  Completion completion = Completion::kCommitted;

  Bytes Encode() const;
  static Result<CompletionRecord> Decode(Slice* in);
};

}  // namespace encompass::audit

#endif  // ENCOMPASS_AUDIT_AUDIT_RECORD_H_
