// F4 — Figure 4 (the manufacturing network). Reproduces the behaviour of
// the four-site replicated data base: local/global transaction mix, the
// suspense-file depth timeline across a partition, and post-heal
// convergence time as a function of the accumulated deferred updates.

#include <benchmark/benchmark.h>

#include "apps/manufacturing/manufacturing.h"
#include "bench_util.h"
#include "test_util.h"
#include "tmf/file_system.h"

namespace encompass::bench {
namespace {

using namespace encompass::apps::manufacturing;
using testutil::TestClient;

const std::vector<net::NodeId> kNodes = {1, 2, 3, 4};

struct MfgRig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<app::Deployment> deploy;
  std::map<net::NodeId, SuspenseMonitor*> monitors;
  std::map<net::NodeId, TestClient*> clients;
};

MfgRig MakeMfgRig(uint64_t seed) {
  MfgRig rig;
  rig.sim = std::make_unique<sim::Simulation>(seed);
  rig.deploy = std::make_unique<app::Deployment>(rig.sim.get());
  for (net::NodeId n : kNodes) {
    app::NodeSpec spec;
    spec.id = n;
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{MfgVolume(n), {}, {}}};
    rig.deploy->AddNode(spec);
  }
  rig.deploy->LinkAll();
  DeployManufacturing(rig.deploy.get(), kNodes);
  for (net::NodeId n : kNodes) {
    AddMfgServerClass(rig.deploy.get(), n, kNodes);
    rig.monitors[n] = AddSuspenseMonitor(rig.deploy.get(), n, kNodes);
    rig.clients[n] = rig.deploy->GetNode(n)->node()->Spawn<TestClient>(2);
  }
  rig.sim->RunFor(Millis(10));
  return rig;
}

Status RunGlobalUpdate(MfgRig& rig, net::NodeId via, const std::string& file,
                       const std::string& key, const std::string& val) {
  TestClient* client = rig.clients[via];
  auto* begin = client->CallRaw(net::Address(via, "$TMP"), tmf::kTmfBegin, {});
  rig.sim->RunFor(Millis(5));
  if (!begin->done || !begin->status.ok()) return Status::Unavailable();
  auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
  storage::Record req;
  req.Set("op", "gupdate").Set("file", file).Set("key", key).Set("val", val);
  auto* send = client->CallRaw(net::Address(via, GlobalServerClass()),
                               app::kServerRequest, req.Encode(),
                               transid->Pack());
  rig.sim->RunFor(Seconds(2));
  if (!send->done || !send->status.ok()) {
    client->CallRaw(net::Address(via, "$TMP"), tmf::kTmfAbort,
                    tmf::EncodeTransidPayload(*transid), transid->Pack());
    rig.sim->RunFor(Seconds(1));
    return send->done ? send->status : Status::Timeout();
  }
  auto* end = client->CallRaw(net::Address(via, "$TMP"), tmf::kTmfEnd,
                              tmf::EncodeTransidPayload(*transid),
                              transid->Pack());
  rig.sim->RunFor(Seconds(1));
  return end->done ? end->status : Status::Timeout();
}

void TableSuspenseTimeline() {
  Header("F4.a suspense-file depth across a partition (master=node 1)");
  MfgRig rig = MakeMfgRig(21);
  SeedGlobalRecord(rig.deploy.get(), kNodes, "item-master", "X", "v0", 1);
  printf("%10s %18s %14s %16s\n", "t (s)", "event", "suspense@1",
         "node4 copy");
  auto row = [&](const char* event) {
    auto v = CopyValue(rig.deploy.get(), 4, "item-master", "X");
    printf("%10.1f %18s %14zu %16s\n",
           static_cast<double>(rig.sim->Now()) / 1e6, event,
           SuspenseDepth(rig.deploy.get(), 1), v ? v->c_str() : "?");
  };
  row("start");
  rig.deploy->cluster().IsolateNode(4);
  rig.sim->RunFor(Millis(100));
  row("node4 isolated");
  for (int i = 1; i <= 6; ++i) {
    RunGlobalUpdate(rig, 1, "item-master", "X", "v" + std::to_string(i));
    if (i % 2 == 0) row(("after update v" + std::to_string(i)).c_str());
  }
  rig.sim->RunFor(Seconds(2));
  row("still partitioned");
  rig.deploy->cluster().ReconnectNode(4);
  SimTime heal_at = rig.sim->Now();
  // Poll until converged.
  while (!Converged(rig.deploy.get(), kNodes, "item-master", "X") &&
         rig.sim->Now() - heal_at < Seconds(60)) {
    rig.sim->RunFor(Millis(250));
  }
  row("reconnected+drained");
  printf("convergence after heal: %.2f s (6 deferred updates, in order)\n",
         static_cast<double>(rig.sim->Now() - heal_at) / 1e6);
}

void TableConvergenceVsBacklog() {
  Header("F4.b convergence time vs accumulated deferred updates");
  printf("%10s %16s %14s\n", "updates", "converged", "heal->conv (s)");
  for (int updates : {2, 4, 8, 16}) {
    MfgRig rig = MakeMfgRig(23);
    SeedGlobalRecord(rig.deploy.get(), kNodes, "bom", "B", "v0", 1);
    rig.deploy->cluster().IsolateNode(4);
    rig.sim->RunFor(Millis(100));
    for (int i = 1; i <= updates; ++i) {
      RunGlobalUpdate(rig, 1, "bom", "B", "v" + std::to_string(i));
    }
    rig.sim->RunFor(Seconds(2));
    rig.deploy->cluster().ReconnectNode(4);
    SimTime heal_at = rig.sim->Now();
    while (!Converged(rig.deploy.get(), kNodes, "bom", "B") &&
           rig.sim->Now() - heal_at < Seconds(120)) {
      rig.sim->RunFor(Millis(250));
    }
    bool converged = Converged(rig.deploy.get(), kNodes, "bom", "B");
    printf("%10d %16s %14.2f\n", updates, converged ? "yes" : "NO",
           static_cast<double>(rig.sim->Now() - heal_at) / 1e6);
  }
}

void TableMasterAvailability() {
  Header("F4.c node autonomy: master availability governs global updates");
  MfgRig rig = MakeMfgRig(29);
  SeedGlobalRecord(rig.deploy.get(), kNodes, "po-header", "P", "open", 1);
  printf("%-44s %10s\n", "operation", "result");
  Status s1 = RunGlobalUpdate(rig, 3, "po-header", "P", "approved");
  printf("%-44s %10s\n", "update via node 3 (master node 1 reachable)",
         s1.ok() ? "ok" : s1.ToString().c_str());
  rig.deploy->cluster().IsolateNode(1);
  rig.sim->RunFor(Millis(100));
  Status s2 = RunGlobalUpdate(rig, 3, "po-header", "P", "cancelled");
  printf("%-44s %10s\n", "update via node 3 (master isolated)",
         s2.ok() ? "ok (WRONG)" : "rejected");
  // Local reads still work everywhere (reads go to the local copy).
  auto v = CopyValue(rig.deploy.get(), 3, "po-header", "P");
  printf("%-44s %10s\n", "local read at node 3 during the partition",
         v ? v->c_str() : "?");
}

void TableReplicationAblation() {
  Header("F4.d ablation: suspense files vs synchronous replica update");
  // The paper: "this simple approach [update all copies in one TMF
  // transaction] fails to address the goal of node autonomy, since no node
  // can run a global update transaction at a time when any other node is
  // unavailable." Reproduce both designs with node 4 isolated.
  printf("%-46s %10s\n", "design / scenario (node 4 isolated)", "update");

  // (a) The paper's design: master-node + suspense file.
  {
    MfgRig rig = MakeMfgRig(37);
    SeedGlobalRecord(rig.deploy.get(), kNodes, "item-master", "A", "v0", 1);
    rig.deploy->cluster().IsolateNode(4);
    rig.sim->RunFor(Millis(100));
    Status s = RunGlobalUpdate(rig, 1, "item-master", "A", "v1");
    printf("%-46s %10s\n", "suspense design, master reachable",
           s.ok() ? "ok" : "REJECTED");
  }

  // (b) Synchronous replication: one TMF transaction updates all copies.
  {
    MfgRig rig = MakeMfgRig(39);
    SeedGlobalRecord(rig.deploy.get(), kNodes, "item-master", "A", "v0", 1);
    rig.deploy->cluster().IsolateNode(4);
    rig.sim->RunFor(Millis(100));

    TestClient* client = rig.clients[1];
    tmf::FileSystem fs(client, &rig.deploy->catalog());
    auto* begin = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
    rig.sim->RunFor(Millis(5));
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    bool any_failed = false;
    for (net::NodeId n : kNodes) {
      bool done = false;
      Status status;
      client->set_current_transid(transid->Pack());
      storage::Record updated;
      updated.Set("val", "v1").Set("master", "1");
      fs.Update(CopyName("item-master", n), Slice("A"),
                Slice(updated.Encode()),
                [&done, &status](const Status& s, const Bytes&) {
                  done = true;
                  status = s;
                });
      client->set_current_transid(0);
      rig.sim->RunFor(Seconds(2));
      if (!done || !status.ok()) any_failed = true;
    }
    Status end_status = Status::Aborted();
    if (!any_failed) {
      auto* end = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                  tmf::EncodeTransidPayload(*transid),
                                  transid->Pack());
      rig.sim->RunFor(Seconds(5));
      if (end->done) end_status = end->status;
    } else {
      client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfAbort,
                      tmf::EncodeTransidPayload(*transid), transid->Pack());
      rig.sim->RunFor(Seconds(2));
    }
    printf("%-46s %10s\n", "synchronous design, all-copies transaction",
           end_status.ok() ? "ok (WRONG)" : "REJECTED");
    printf("(the suspense design trades momentary replica divergence for\n"
           " node autonomy — the paper's stated compromise)\n");
  }
}

void BM_GlobalUpdateRoundTrip(benchmark::State& state) {
  MfgRig rig = MakeMfgRig(31);
  SeedGlobalRecord(rig.deploy.get(), kNodes, "item-master", "K", "v", 1);
  int64_t n = 0;
  SimTime start = rig.sim->Now();
  for (auto _ : state) {
    RunGlobalUpdate(rig, 1, "item-master", "K", "v" + std::to_string(n));
    ++n;
  }
  state.counters["sim_us_per_update"] = benchmark::Counter(
      static_cast<double>(rig.sim->Now() - start) / static_cast<double>(n));
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_GlobalUpdateRoundTrip)->Iterations(20);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("fig4_manufacturing");
  encompass::bench::ReportMeta(/*seed=*/21);
  printf("F4: Figure 4 — the four-site manufacturing data base\n");
  encompass::bench::TableSuspenseTimeline();
  encompass::bench::TableConvergenceVsBacklog();
  encompass::bench::TableMasterAvailability();
  encompass::bench::TableReplicationAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
