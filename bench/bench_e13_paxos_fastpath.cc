// E13 — the Paxos Commit fast path. Decision-replication Paxos (E12) buys
// the non-blocking in-doubt window at the price of an acceptor round trip
// after phase 1: the home learns every prepared vote, then replicates its
// decision, so the commit point lags 2PC by one WAN delay. The fast path
// removes that round: every participant sends its phase-2a prepared vote
// straight to the F+1 nearest acceptors (co-located first — a local forced
// write, not a network message), and the home's vote-ack tally IS the
// commit point. This bench prices all three protocols over the E12 storm
// shapes: commit latency (fast path targeted within ~1.15x of 2PC),
// cross-node messages per committed transaction (fewer than E12's paxos),
// acceptor-log boundedness under GC, and engine-identity at every worker
// count.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "bench_util.h"
#include "encompass/chaos.h"

namespace encompass::bench {
namespace {

enum class Mode { kTwoPhase, kPaxos, kFastPath };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kTwoPhase: return "2pc";
    case Mode::kPaxos: return "paxos";
    case Mode::kFastPath: return "paxos_fast";
  }
  return "?";
}

// The E12 storm shape: three nodes, >= 10 faults, two node crashes, long
// dead-home windows, fast in-doubt probing. Message accounting is on — the
// per-transaction message count is this bench's headline.
app::ChaosCampaignConfig CampaignConfig(uint64_t seed, Mode mode) {
  app::ChaosCampaignConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 3;
  cfg.accounts_per_node = 20;
  cfg.clients_per_node = 2;
  cfg.schedule.faults = 10;
  cfg.schedule.min_node_crashes = 2;
  cfg.schedule.w_crash = 1.5;
  cfg.schedule.min_heal = 2'000'000;
  cfg.schedule.max_heal = 4'000'000;
  cfg.schedule.crash_recovery_pad = 4'000'000;
  cfg.indoubt_resolve_interval = Millis(250);
  cfg.track_messages = true;
  if (mode != Mode::kTwoPhase) {
    cfg.commit_protocol = tmf::CommitProtocol::kPaxos;
    cfg.commit_replication = 3;  // 2F+1, F = 1
    cfg.paxos_fast_path = mode == Mode::kFastPath;
  }
  return cfg;
}

struct ModeTotals {
  size_t runs = 0, survived = 0;
  size_t indoubt_at_recovery = 0;
  uint64_t committed = 0;
  uint64_t messages = 0;          // transid-attributed cross-node sends
  double commit_p50_ms = 0;       // worst across seeds
  double commit_p99_ms = 0;       // worst across seeds
  size_t acceptor_log_peak = 0;   // worst across seeds
  size_t acceptor_log_final = 0;  // summed (should be ~0 after GC)
  int64_t duplicate_votes = 0;
  std::map<uint32_t, uint64_t> msgs_per_tag;
};

constexpr uint64_t kFirstSeed = 1, kLastSeed = 8;

ModeTotals RunSeeds(Mode mode) {
  ModeTotals t;
  printf("%6s %9s %10s %8s %10s %10s %9s %9s %9s\n", "seed", "committed",
         "msgs/txn", "indoubt", "commit_p50", "commit_p99", "log_peak",
         "log_final", "survived");
  for (uint64_t seed = kFirstSeed; seed <= kLastSeed; ++seed) {
    app::ChaosCampaignResult r =
        app::RunChaosCampaign(CampaignConfig(seed, mode));
    const bool ok = r.quiesced && r.violations.empty() &&
                    r.balance_sum == r.expected_sum && r.leaked_locks == 0;
    ++t.runs;
    if (ok) ++t.survived;
    t.indoubt_at_recovery += r.indoubt_at_recovery;
    t.committed += r.txns_committed;
    t.messages += r.tracked_messages;
    t.commit_p50_ms = std::max(t.commit_p50_ms, r.commit_latency_p50_ms);
    t.commit_p99_ms = std::max(t.commit_p99_ms, r.commit_latency_p99_ms);
    t.acceptor_log_peak = std::max(t.acceptor_log_peak, r.acceptor_log_peak);
    t.acceptor_log_final += r.acceptor_log_final;
    t.duplicate_votes += r.acceptor_duplicate_votes;
    for (const auto& [tag, count] : r.msgs_per_tag) {
      t.msgs_per_tag[tag] += count;
    }
    printf("%6llu %9llu %10.2f %8zu %10.2f %10.2f %9zu %9zu %9s\n",
           static_cast<unsigned long long>(seed),
           static_cast<unsigned long long>(r.txns_committed),
           r.msgs_per_committed_txn, r.indoubt_at_recovery,
           r.commit_latency_p50_ms, r.commit_latency_p99_ms,
           r.acceptor_log_peak, r.acceptor_log_final, ok ? "yes" : "NO");
  }
  return t;
}

double MsgsPerTxn(const ModeTotals& t) {
  if (t.committed == 0) return 0;
  return static_cast<double>(t.messages) / static_cast<double>(t.committed);
}

void EmitMode(const std::string& prefix, const ModeTotals& t) {
  ReportValue(prefix + ".survived", static_cast<double>(t.survived));
  ReportValue(prefix + ".indoubt_at_recovery",
              static_cast<double>(t.indoubt_at_recovery));
  ReportValue(prefix + ".committed", static_cast<double>(t.committed));
  ReportValue(prefix + ".net.msgs_per_txn", MsgsPerTxn(t));
  ReportValue(prefix + ".commit_p50_ms", t.commit_p50_ms);
  ReportValue(prefix + ".commit_p99_ms", t.commit_p99_ms);
  ReportValue(prefix + ".acceptor_log_peak",
              static_cast<double>(t.acceptor_log_peak));
  ReportValue(prefix + ".acceptor_log_final",
              static_cast<double>(t.acceptor_log_final));
  ReportValue(prefix + ".acceptor_duplicate_votes",
              static_cast<double>(t.duplicate_votes));
  for (const auto& [tag, count] : t.msgs_per_tag) {
    ReportValue(prefix + ".net.msgs." + NetTagName(tag),
                static_cast<double>(count));
  }
}

void TableProtocolComparison() {
  Header("E13.a 2PC vs Paxos vs fast-path Paxos across the storm seeds");
  printf("two-phase commit (the paper's protocol):\n");
  ModeTotals two = RunSeeds(Mode::kTwoPhase);
  printf("\npaxos commit, decision replication (E12):\n");
  ModeTotals pax = RunSeeds(Mode::kPaxos);
  printf("\npaxos commit, fast path (direct F+1 votes, co-located first):\n");
  ModeTotals fast = RunSeeds(Mode::kFastPath);

  printf("\ncross-node messages per committed txn: 2pc %.2f, paxos %.2f, "
         "fast %.2f\n",
         MsgsPerTxn(two), MsgsPerTxn(pax), MsgsPerTxn(fast));
  printf("commit latency p50 (worst seed): 2pc %.2fms, paxos %.2fms, "
         "fast %.2fms (fast/2pc = %.3fx, target <= ~1.15x)\n",
         two.commit_p50_ms, pax.commit_p50_ms, fast.commit_p50_ms,
         two.commit_p50_ms > 0 ? fast.commit_p50_ms / two.commit_p50_ms : 0);
  printf("in-doubt at recovery: 2pc %zu, paxos %zu, fast %zu\n",
         two.indoubt_at_recovery, pax.indoubt_at_recovery,
         fast.indoubt_at_recovery);
  printf("fast-path acceptor log: peak %zu instances, %zu left after GC, "
         "%lld duplicate votes absorbed\n",
         fast.acceptor_log_peak, fast.acceptor_log_final,
         static_cast<long long>(fast.duplicate_votes));

  EmitMode("2pc", two);
  EmitMode("paxos", pax);
  EmitMode("paxos_fast", fast);
  ReportValue("runs_per_mode", static_cast<double>(two.runs));
  ReportValue("fast_vs_2pc_commit_p50_ratio",
              two.commit_p50_ms > 0
                  ? fast.commit_p50_ms / two.commit_p50_ms : 0);
  ReportValue("fast_vs_paxos_msgs_delta", MsgsPerTxn(pax) - MsgsPerTxn(fast));
}

void TableEngineIdentity() {
  Header("E13.b same seed, same storm, every engine (all three modes)");
  const int workers[] = {0, 1, 2, 4, 8};
  int divergence = 0;
  for (Mode mode : {Mode::kTwoPhase, Mode::kPaxos, Mode::kFastPath}) {
    app::ChaosCampaignConfig cfg = CampaignConfig(kFirstSeed, mode);
    app::ChaosCampaignResult base = app::RunChaosCampaign(cfg);
    printf("%-11s", ModeName(mode));
    for (int w : workers) {
      cfg.parallel_workers = w;
      app::ChaosCampaignResult r = app::RunChaosCampaign(cfg);
      const bool same = r.txns_started == base.txns_started &&
                        r.txns_committed == base.txns_committed &&
                        r.txns_aborted == base.txns_aborted &&
                        r.txns_unknown == base.txns_unknown &&
                        r.balance_sum == base.balance_sum &&
                        r.tracked_messages == base.tracked_messages &&
                        r.journal == base.journal;
      if (!same) ++divergence;
      printf(" w%d:%s", w, same ? "ok" : "DIVERGED");
    }
    printf("\n");
  }
  printf("(fingerprint: txn counts + balance sum + message count + fault "
         "journal)\n");
  ReportValue("divergence", static_cast<double>(divergence));
}

void BM_FastPathChaosCampaign(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    app::ChaosCampaignResult r =
        app::RunChaosCampaign(CampaignConfig(seed++, Mode::kFastPath));
    benchmark::DoNotOptimize(r.balance_sum);
    if (!r.quiesced || !r.violations.empty()) {
      state.SkipWithError("campaign failed");
      break;
    }
  }
}
BENCHMARK(BM_FastPathChaosCampaign)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e13_paxos_fastpath");
  encompass::bench::ReportMeta(/*seed=*/1);
  encompass::bench::ReportCommitConfig(encompass::tmf::CommitProtocol::kPaxos,
                                       /*fast_path=*/true);
  printf("E13: the Paxos Commit fast path — one fewer WAN round trip\n");
  encompass::bench::TableProtocolComparison();
  encompass::bench::TableEngineIdentity();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
