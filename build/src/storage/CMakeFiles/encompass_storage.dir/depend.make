# Empty dependencies file for encompass_storage.
# This may be replaced when dependencies are built.
