#include "apps/manufacturing/manufacturing.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "tmf/tmf_protocol.h"

namespace encompass::apps::manufacturing {

using storage::Record;

const std::vector<std::string> kGlobalFiles = {"item-master", "bom",
                                               "po-header"};
const std::vector<std::string> kLocalFiles = {"stock", "wip", "history",
                                              "po-detail"};

std::string CopyName(const std::string& file, net::NodeId n) {
  return file + "@" + std::to_string(n);
}
std::string SuspenseName(net::NodeId n) {
  return "suspense@" + std::to_string(n);
}
std::string MfgVolume(net::NodeId n) { return "$MFG" + std::to_string(n); }
std::string GlobalServerClass() { return "$SC.MFG"; }

namespace {

std::string QueueKey(net::NodeId dest, uint64_t seq) {
  char buf[32];
  snprintf(buf, sizeof(buf), "q|%03u|%012" PRIu64, dest, seq);
  return buf;
}
std::string CounterKey(net::NodeId dest) {
  char buf[16];
  snprintf(buf, sizeof(buf), "c|%03u", dest);
  return buf;
}
std::string QueuePrefixEnd(net::NodeId dest) {
  char buf[16];
  snprintf(buf, sizeof(buf), "q|%03u|~", dest);  // '~' > any digit
  return buf;
}

}  // namespace

Status DeployManufacturing(app::Deployment* deploy,
                           const std::vector<net::NodeId>& nodes) {
  for (net::NodeId n : nodes) {
    app::NodeDeployment* nd = deploy->GetNode(n);
    if (nd == nullptr) return Status::NotFound("node not deployed");
    auto it = nd->storage().volumes.find(MfgVolume(n));
    if (it == nd->storage().volumes.end()) {
      return Status::NotFound("volume " + MfgVolume(n) + " not deployed");
    }
    storage::Volume* vol = it->second.get();
    storage::FileOptions audited;
    audited.audited = true;
    for (const auto& f : kGlobalFiles) {
      ENCOMPASS_RETURN_IF_ERROR(vol->CreateFile(
          CopyName(f, n), storage::FileOrganization::kKeySequenced, audited));
      ENCOMPASS_RETURN_IF_ERROR(deploy->DefineFile(CopyName(f, n), n,
                                                   MfgVolume(n)));
    }
    for (const auto& f : kLocalFiles) {
      ENCOMPASS_RETURN_IF_ERROR(vol->CreateFile(
          CopyName(f, n), storage::FileOrganization::kKeySequenced, audited));
      ENCOMPASS_RETURN_IF_ERROR(deploy->DefineFile(CopyName(f, n), n,
                                                   MfgVolume(n)));
    }
    ENCOMPASS_RETURN_IF_ERROR(vol->CreateFile(
        SuspenseName(n), storage::FileOrganization::kKeySequenced, audited));
    ENCOMPASS_RETURN_IF_ERROR(deploy->DefineFile(SuspenseName(n), n,
                                                 MfgVolume(n)));
  }
  return Status::Ok();
}

void SeedGlobalRecord(app::Deployment* deploy,
                      const std::vector<net::NodeId>& nodes,
                      const std::string& file, const std::string& key,
                      const std::string& value, net::NodeId master) {
  Record rec;
  rec.Set("val", value).Set("master", std::to_string(master));
  for (net::NodeId n : nodes) {
    auto* vol =
        deploy->GetNode(n)->storage().volumes.at(MfgVolume(n)).get();
    vol->Mutate(CopyName(file, n), storage::MutationOp::kInsert, Slice(key),
                Slice(rec.Encode()));
    vol->Flush();
  }
}

void SeedLocalRecord(app::Deployment* deploy, net::NodeId node,
                     const std::string& file, const std::string& key,
                     const std::string& value) {
  Record rec;
  rec.Set("val", value);
  auto* vol = deploy->GetNode(node)->storage().volumes.at(MfgVolume(node)).get();
  vol->Mutate(CopyName(file, node), storage::MutationOp::kInsert, Slice(key),
              Slice(rec.Encode()));
  vol->Flush();
}

std::optional<std::string> CopyValue(app::Deployment* deploy, net::NodeId n,
                                     const std::string& file,
                                     const std::string& key) {
  auto* vol = deploy->GetNode(n)->storage().volumes.at(MfgVolume(n)).get();
  auto r = vol->ReadRecord(CopyName(file, n), Slice(key));
  if (!r.status.ok()) return std::nullopt;
  auto rec = Record::Decode(Slice(r.value));
  if (!rec.ok()) return std::nullopt;
  return rec->Get("val");
}

size_t SuspenseDepth(app::Deployment* deploy, net::NodeId n) {
  auto* vol = deploy->GetNode(n)->storage().volumes.at(MfgVolume(n)).get();
  storage::StructuredFile* f = vol->Find(SuspenseName(n));
  if (f == nullptr) return 0;
  size_t depth = 0;
  f->ForEach([&depth](const Slice& key, const Slice&) {
    if (key.StartsWith(Slice("q|"))) ++depth;
  });
  return depth;
}

bool Converged(app::Deployment* deploy, const std::vector<net::NodeId>& nodes,
               const std::string& file, const std::string& key) {
  std::optional<std::string> first;
  for (net::NodeId n : nodes) {
    auto v = CopyValue(deploy, n, file, key);
    if (!v.has_value()) return false;
    if (!first.has_value()) first = v;
    else if (*first != *v) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// MfgServer
// ---------------------------------------------------------------------------

void MfgServer::HandleRequest(const net::Message& msg) {
  auto req = Record::Decode(Slice(msg.payload));
  if (!req.ok()) {
    Respond(msg, req.status());
    return;
  }
  const std::string op = req->Get("op");
  const net::NodeId my = id().node;
  net::Message request = msg;

  if (op == "gread" || op == "lread") {
    // "All reads of a record in a global file [are] directed to the local
    // copy."
    fs().Read(CopyName(req->Get("file"), my), Slice(req->Get("key")),
              /*lock=*/false,
              [this, request](const Status& s, const Bytes& payload) {
                Respond(request, s, payload);
              });
    return;
  }
  if (op == "gupdate") {
    HandleGlobalUpdate(msg, *req);
    return;
  }
  if (op == "dupdate") {
    // Deferred update from a master node's suspense monitor: apply to the
    // local copy without further propagation.
    const std::string copy = CopyName(req->Get("file"), my);
    Record body = *req;
    fs().Read(copy, Slice(req->Get("key")), /*lock=*/true,
              [this, request, copy, body](const Status& s, const Bytes& payload) {
                if (s.IsNotFound()) {
                  Record fresh;
                  fresh.Set("val", body.Get("val"))
                      .Set("master", body.Get("master"));
                  fs().Insert(copy, Slice(body.Get("key")),
                              Slice(fresh.Encode()),
                              [this, request](const Status& s2, const Bytes&) {
                                Respond(request, s2);
                              });
                  return;
                }
                if (!s.ok()) {
                  Respond(request, s);
                  return;
                }
                auto cur = Record::Decode(Slice(payload));
                if (!cur.ok()) {
                  Respond(request, cur.status());
                  return;
                }
                Record updated = *cur;
                updated.Set("val", body.Get("val"));
                fs().Update(copy, Slice(body.Get("key")),
                            Slice(updated.Encode()),
                            [this, request](const Status& s2, const Bytes&) {
                              Respond(request, s2);
                            });
              });
    return;
  }
  if (op == "lupdate") {
    const std::string copy = CopyName(req->Get("file"), my);
    Record body = *req;
    fs().Read(copy, Slice(req->Get("key")), /*lock=*/true,
              [this, request, copy, body](const Status& s, const Bytes& payload) {
                if (s.IsTimeout()) {
                  Respond(request, Status::RestartRequested("lock timeout"));
                  return;
                }
                if (!s.ok()) {
                  Respond(request, s);
                  return;
                }
                auto cur = Record::Decode(Slice(payload));
                Record updated = cur.ok() ? *cur : Record();
                updated.Set("val", body.Get("val"));
                fs().Update(copy, Slice(body.Get("key")),
                            Slice(updated.Encode()),
                            [this, request](const Status& s2, const Bytes&) {
                              Respond(request, s2);
                            });
              });
    return;
  }
  Respond(msg, Status::InvalidArgument("unknown op: " + op));
}

void MfgServer::HandleGlobalUpdate(const net::Message& msg,
                                   const Record& req) {
  const net::NodeId my = id().node;
  const std::string copy = CopyName(req.Get("file"), my);
  net::Message request = msg;
  Record body = req;
  fs().Read(copy, Slice(req.Get("key")), /*lock=*/true,
            [this, request, body](const Status& s, const Bytes& payload) {
              if (!s.ok()) {
                Respond(request, s.IsTimeout()
                                     ? Status::RestartRequested("lock timeout")
                                     : s);
                return;
              }
              auto cur = Record::Decode(Slice(payload));
              if (!cur.ok()) {
                Respond(request, cur.status());
                return;
              }
              auto master =
                  static_cast<net::NodeId>(strtoul(cur->Get("master").c_str(),
                                                   nullptr, 10));
              if (master == id().node) {
                MasterApply(request, body, *cur);
                return;
              }
              // Not the master: forward the whole request to the master
              // node's server class, within the same transaction. "The
              // update of a global record can occur only if its master node
              // is available."
              fs().EnsureRemote(master, [this, request, body,
                                         master](const Status& s2) {
                if (!s2.ok()) {
                  Respond(request, Status::Unavailable(
                                       "master node inaccessible"));
                  return;
                }
                os::CallOptions opt;
                opt.timeout = Seconds(5);
                set_current_transid(request.transid);
                Call(net::Address(master, GlobalServerClass()),
                     app::kServerRequest, body.Encode(),
                     [this, request](const Status& s3, const net::Message& m) {
                       Respond(request, s3, m.payload);
                     },
                     opt);
              });
            });
}

void MfgServer::MasterApply(const net::Message& msg, const Record& req,
                            const Record& current) {
  const net::NodeId my = id().node;
  const std::string copy = CopyName(req.Get("file"), my);
  Record updated = current;
  updated.Set("val", req.Get("val"));
  net::Message request = msg;
  Record body = req;
  body.Set("master", current.Get("master"));
  fs().Update(copy, Slice(req.Get("key")), Slice(updated.Encode()),
              [this, request, body, my](const Status& s, const Bytes&) {
                if (!s.ok()) {
                  Respond(request, s);
                  return;
                }
                std::vector<net::NodeId> rest;
                for (net::NodeId n : nodes_) {
                  if (n != my) rest.push_back(n);
                }
                EnqueueDeferred(request, body, std::to_string(my),
                                std::move(rest));
              });
}

void MfgServer::EnqueueDeferred(const net::Message& msg, const Record& req,
                                const std::string& master,
                                std::vector<net::NodeId> rest) {
  if (rest.empty()) {
    Respond(msg, Status::Ok());
    return;
  }
  const net::NodeId my = id().node;
  const net::NodeId dest = rest.back();
  rest.pop_back();
  const std::string suspense = SuspenseName(my);
  const std::string counter_key = CounterKey(dest);
  net::Message request = msg;
  Record body = req;

  // Lock + bump the per-destination sequence counter, then insert the queue
  // entry — all inside the caller's transaction, so the master update and
  // its deferred propagation records commit (or abort) atomically.
  fs().Read(suspense, Slice(counter_key), /*lock=*/true,
            [this, request, body, master, rest, dest, suspense, counter_key](
                const Status& s, const Bytes& payload) {
              uint64_t seq = 1;
              bool exists = false;
              if (s.ok()) {
                auto cur = Record::Decode(Slice(payload));
                if (cur.ok()) {
                  seq = strtoull(cur->Get("seq").c_str(), nullptr, 10) + 1;
                  exists = true;
                }
              } else if (!s.IsNotFound()) {
                Respond(request, s);
                return;
              }
              Record counter;
              counter.Set("seq", std::to_string(seq));
              auto after_counter = [this, request, body, master, rest, dest,
                                    suspense, seq](const Status& s2,
                                                   const Bytes&) {
                if (!s2.ok()) {
                  Respond(request, s2);
                  return;
                }
                Record entry;
                entry.Set("dest", std::to_string(dest))
                    .Set("file", body.Get("file"))
                    .Set("key", body.Get("key"))
                    .Set("val", body.Get("val"))
                    .Set("master", master);
                fs().Insert(suspense, Slice(QueueKey(dest, seq)),
                            Slice(entry.Encode()),
                            [this, request, body, master, rest](
                                const Status& s3, const Bytes&) {
                              if (!s3.ok()) {
                                Respond(request, s3);
                                return;
                              }
                              EnqueueDeferred(request, body, master, rest);
                            });
              };
              if (exists) {
                fs().Update(suspense, Slice(counter_key),
                            Slice(counter.Encode()), after_counter);
              } else {
                fs().Insert(suspense, Slice(counter_key),
                            Slice(counter.Encode()), after_counter);
              }
            });
}

app::ServerClassRouter* AddMfgServerClass(
    app::Deployment* deploy, net::NodeId node,
    const std::vector<net::NodeId>& nodes) {
  app::NodeDeployment* nd = deploy->GetNode(node);
  if (nd == nullptr) return nullptr;
  app::ServerClassConfig cfg;
  cfg.name = GlobalServerClass();
  cfg.max_servers = 6;
  const storage::Catalog* catalog = &deploy->catalog();
  cfg.factory = [catalog, nodes](os::Node* n, int cpu) -> net::Pid {
    auto* server = n->Spawn<MfgServer>(cpu, catalog, nodes);
    return server == nullptr ? 0 : server->id().pid;
  };
  int cpu = nd->spec().node_config.num_cpus - 1;
  auto* router = app::SpawnServerClass(nd->node(), cfg, cpu, 0);
  nd->RegisterRepairablePair<app::ServerClassRouter>(cfg.name, cfg);
  return router;
}

// ---------------------------------------------------------------------------
// SuspenseMonitor
// ---------------------------------------------------------------------------

void SuspenseMonitor::OnStart() {
  fs_ = std::make_unique<tmf::FileSystem>(this, catalog_);
  SetTimer(config_.scan_interval, [this]() { Scan(); });
}

void SuspenseMonitor::Scan() {
  if (scanning_) return;
  scanning_ = true;
  ProcessNext(ToBytes("q|"));
}

void SuspenseMonitor::FinishScan() {
  scanning_ = false;
  SetTimer(config_.scan_interval, [this]() { Scan(); });
}

void SuspenseMonitor::ProcessNext(const Bytes& from_key) {
  fs_->Seek(SuspenseName(id().node), Slice(from_key), /*inclusive=*/true,
            [this](const Status& s, const Bytes& payload) {
              if (!s.ok()) {
                FinishScan();
                return;
              }
              auto rep = discprocess::SeekReply::Decode(Slice(payload));
              if (!rep.ok() || !Slice(rep->key).StartsWith(Slice("q|"))) {
                FinishScan();
                return;
              }
              auto entry = Record::Decode(Slice(rep->value));
              if (!entry.ok()) {
                FinishScan();
                return;
              }
              auto dest = static_cast<net::NodeId>(
                  strtoul(entry->Get("dest").c_str(), nullptr, 10));
              if (unreachable_.count(dest)) {
                // Skip this destination's whole queue; updates accumulate
                // until the network is re-connected.
                ProcessNext(ToBytes(QueuePrefixEnd(dest)));
                return;
              }
              ApplyEntry(rep->key, *entry);
            });
}

void SuspenseMonitor::ApplyEntry(const Bytes& entry_key, const Record& entry) {
  auto dest = static_cast<net::NodeId>(
      strtoul(entry.Get("dest").c_str(), nullptr, 10));
  // "The suspense monitor executes a TMF transaction which sends the update
  // to a server at the non-master node and deletes the suspense file entry."
  os::CallOptions opt;
  opt.timeout = Seconds(3);
  Call(net::Address(id().node, "$TMP"), tmf::kTmfBegin, {},
       [this, entry_key, entry, dest](const Status& s, const net::Message& m) {
         if (!s.ok()) {
           FinishScan();
           return;
         }
         auto transid = tmf::DecodeTransidPayload(Slice(m.payload));
         if (!transid.ok()) {
           FinishScan();
           return;
         }
         uint64_t packed = transid->Pack();
         set_current_transid(packed);
         auto abort_and_skip = [this, packed, dest]() {
           set_current_transid(packed);
           Call(net::Address(id().node, "$TMP"), tmf::kTmfAbort,
                tmf::EncodeTransidPayload(Transid::Unpack(packed)),
                [this, dest](const Status&, const net::Message&) {
                  set_current_transid(0);
                  // Leave this destination for a later scan.
                  ProcessNext(ToBytes(QueuePrefixEnd(dest)));
                });
         };
         fs_->EnsureRemote(dest, [this, entry_key, entry, dest, packed,
                                  abort_and_skip](const Status& s2) {
           if (!s2.ok()) {
             abort_and_skip();
             return;
           }
           Record fwd;
           fwd.Set("op", "dupdate")
               .Set("file", entry.Get("file"))
               .Set("key", entry.Get("key"))
               .Set("val", entry.Get("val"))
               .Set("master", entry.Get("master"));
           os::CallOptions send_opt;
           send_opt.timeout = Seconds(3);
           set_current_transid(packed);
           Call(net::Address(dest, GlobalServerClass()), app::kServerRequest,
                fwd.Encode(),
                [this, entry_key, packed, dest, abort_and_skip](
                    const Status& s3, const net::Message&) {
                  if (!s3.ok()) {
                    abort_and_skip();
                    return;
                  }
                  set_current_transid(packed);
                  fs_->Delete(
                      SuspenseName(id().node), Slice(entry_key),
                      [this, entry_key, packed, abort_and_skip](
                          const Status& s4, const Bytes&) {
                        if (!s4.ok()) {
                          abort_and_skip();
                          return;
                        }
                        set_current_transid(packed);
                        Call(net::Address(id().node, "$TMP"), tmf::kTmfEnd,
                             tmf::EncodeTransidPayload(
                                 Transid::Unpack(packed)),
                             [this, entry_key](const Status& s5,
                                               const net::Message&) {
                               set_current_transid(0);
                               if (s5.ok()) {
                                 ++applied_;
                                 sim()->GetStats().Incr(
                                     "mfg.deferred_applied");
                                 ProcessNext(entry_key);
                               } else {
                                 FinishScan();
                               }
                             });
                      });
                },
                send_opt);
         });
         set_current_transid(0);
       },
       opt);
}

SuspenseMonitor* AddSuspenseMonitor(app::Deployment* deploy, net::NodeId node,
                                    const std::vector<net::NodeId>& nodes,
                                    SimDuration scan_interval) {
  SuspenseMonitorConfig cfg;
  cfg.nodes = nodes;
  cfg.scan_interval = scan_interval;
  return deploy->GetNode(node)->node()->Spawn<SuspenseMonitor>(
      1, &deploy->catalog(), cfg);
}

// ---------------------------------------------------------------------------
// Terminal programs
// ---------------------------------------------------------------------------

app::ScreenProgram MakeLocalStockProgram(net::NodeId node, int num_items) {
  app::ScreenProgram p("local-stock");
  p.Accept([num_items](app::Fields& f, Random& rng) {
     f["item"] = "item" + std::to_string(rng.Uniform(num_items));
     f["qty"] = std::to_string(rng.Uniform(100));
   })
      .BeginTransaction()
      .Send(node, GlobalServerClass(),
            [](const app::Fields& f) {
              Record r;
              r.Set("op", "lupdate")
                  .Set("file", "stock")
                  .Set("key", f.at("item"))
                  .Set("val", f.at("qty"));
              return r.Encode();
            })
      .EndTransaction();
  return p;
}

app::ScreenProgram MakeGlobalUpdateProgram(net::NodeId node,
                                           const std::string& file,
                                           const std::string& key) {
  app::ScreenProgram p("global-update");
  p.Accept([](app::Fields& f, Random& rng) {
     f["val"] = "rev" + std::to_string(rng.Uniform(1000000));
   })
      .BeginTransaction()
      .Send(node, GlobalServerClass(),
            [file, key](const app::Fields& f) {
              Record r;
              r.Set("op", "gupdate")
                  .Set("file", file)
                  .Set("key", key)
                  .Set("val", f.at("val"));
              return r.Encode();
            })
      .EndTransaction();
  return p;
}

}  // namespace encompass::apps::manufacturing
