#include "discprocess/disc_protocol.h"

#include "common/coding.h"

namespace encompass::discprocess {

Bytes DiscRequest::Encode() const {
  Bytes out;
  PutLengthPrefixed(&out, Slice(file));
  PutLengthPrefixed(&out, Slice(key));
  PutLengthPrefixed(&out, Slice(record));
  PutLengthPrefixed(&out, Slice(field));
  PutLengthPrefixed(&out, Slice(value));
  uint8_t flags = (lock ? 1 : 0) | (inclusive ? 2 : 0);
  PutFixed8(&out, flags);
  PutFixed8(&out, static_cast<uint8_t>(undo_op));
  PutVarint64(&out, static_cast<uint64_t>(lock_timeout));
  PutVarint32(&out, max_records);
  return out;
}

Result<DiscRequest> DiscRequest::Decode(const Slice& payload) {
  Slice in = payload;
  DiscRequest req;
  uint8_t flags, op;
  uint64_t timeout;
  if (!GetLengthPrefixedString(&in, &req.file) ||
      !GetLengthPrefixedBytes(&in, &req.key) ||
      !GetLengthPrefixedBytes(&in, &req.record) ||
      !GetLengthPrefixedString(&in, &req.field) ||
      !GetLengthPrefixedString(&in, &req.value) || !GetFixed8(&in, &flags) ||
      !GetFixed8(&in, &op) || !GetVarint64(&in, &timeout)) {
    return DecodeError("disc request");
  }
  req.lock = (flags & 1) != 0;
  req.inclusive = (flags & 2) != 0;
  req.undo_op = static_cast<storage::MutationOp>(op);
  req.lock_timeout = static_cast<SimDuration>(timeout);
  if (!GetVarint32(&in, &req.max_records)) return DecodeError("disc request");
  return req;
}

Bytes SeekReply::Encode() const {
  Bytes out;
  PutLengthPrefixed(&out, Slice(key));
  PutLengthPrefixed(&out, Slice(value));
  return out;
}

Result<SeekReply> SeekReply::Decode(const Slice& payload) {
  Slice in = payload;
  SeekReply rep;
  if (!GetLengthPrefixedBytes(&in, &rep.key) ||
      !GetLengthPrefixedBytes(&in, &rep.value)) {
    return DecodeError("seek reply");
  }
  return rep;
}

Bytes ScanReply::Encode() const {
  Bytes out;
  PutFixed8(&out, at_end ? 1 : 0);
  PutVarint32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    PutLengthPrefixed(&out, Slice(e.key));
    PutLengthPrefixed(&out, Slice(e.value));
  }
  return out;
}

Result<ScanReply> ScanReply::Decode(const Slice& payload) {
  Slice in = payload;
  ScanReply rep;
  uint8_t at_end;
  uint32_t n;
  if (!GetFixed8(&in, &at_end) || !GetVarint32(&in, &n)) {
    return DecodeError("scan reply");
  }
  rep.at_end = at_end != 0;
  if (static_cast<uint64_t>(n) * 2 > in.size()) {
    return DecodeError("scan count exceeds payload");
  }
  rep.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SeekReply entry;
    if (!GetLengthPrefixedBytes(&in, &entry.key) ||
        !GetLengthPrefixedBytes(&in, &entry.value)) {
      return DecodeError("scan entry");
    }
    rep.entries.push_back(std::move(entry));
  }
  return rep;
}

Bytes LockOwnersReply::Encode() const {
  Bytes out;
  PutVarint64(&out, owners.size());
  for (const Transid& t : owners) PutFixed64(&out, t.Pack());
  return out;
}

Result<LockOwnersReply> LockOwnersReply::Decode(const Slice& payload) {
  Slice in = payload;
  LockOwnersReply rep;
  uint64_t n;
  if (!GetVarint64(&in, &n)) return DecodeError("lock owners reply");
  rep.owners.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t packed;
    if (!GetFixed64(&in, &packed)) return DecodeError("lock owners reply");
    rep.owners.push_back(Transid::Unpack(packed));
  }
  return rep;
}

Bytes PlannedBatch::Encode() const {
  Bytes out;
  PutVarint64(&out, epoch);
  PutVarint32(&out, lane);
  PutVarint32(&out, static_cast<uint32_t>(ops.size()));
  for (const PlannedOp& op : ops) {
    PutFixed8(&out, static_cast<uint8_t>(op.kind));
    PutFixed64(&out, op.transid.Pack());
    PutLengthPrefixed(&out, Slice(op.file));
    PutLengthPrefixed(&out, Slice(op.key));
    PutLengthPrefixed(&out, Slice(op.record));
    PutLengthPrefixed(&out, Slice(op.field));
    PutFixed64(&out, static_cast<uint64_t>(op.delta));
  }
  return out;
}

Result<PlannedBatch> PlannedBatch::Decode(const Slice& payload) {
  Slice in = payload;
  PlannedBatch batch;
  uint32_t n;
  if (!GetVarint64(&in, &batch.epoch) || !GetVarint32(&in, &batch.lane) ||
      !GetVarint32(&in, &n)) {
    return DecodeError("planned batch");
  }
  if (static_cast<uint64_t>(n) * 21 > in.size()) {
    return DecodeError("planned op count exceeds payload");
  }
  batch.ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PlannedOp op;
    uint8_t kind;
    uint64_t packed, delta;
    if (!GetFixed8(&in, &kind) || !GetFixed64(&in, &packed) ||
        !GetLengthPrefixedString(&in, &op.file) ||
        !GetLengthPrefixedBytes(&in, &op.key) ||
        !GetLengthPrefixedBytes(&in, &op.record) ||
        !GetLengthPrefixedString(&in, &op.field) || !GetFixed64(&in, &delta)) {
      return DecodeError("planned op");
    }
    op.kind = static_cast<PlannedOp::Kind>(kind);
    op.transid = Transid::Unpack(packed);
    op.delta = static_cast<int64_t>(delta);
    batch.ops.push_back(std::move(op));
  }
  return batch;
}

Bytes PlannedBatchReply::Encode() const {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(results.size()));
  for (const OpResult& r : results) {
    PutFixed8(&out, static_cast<uint8_t>(r.status));
    PutLengthPrefixed(&out, Slice(r.value));
  }
  return out;
}

Result<PlannedBatchReply> PlannedBatchReply::Decode(const Slice& payload) {
  Slice in = payload;
  PlannedBatchReply rep;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return DecodeError("planned batch reply");
  if (static_cast<uint64_t>(n) * 2 > in.size()) {
    return DecodeError("planned reply count exceeds payload");
  }
  rep.results.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OpResult r;
    uint8_t code;
    if (!GetFixed8(&in, &code) || !GetLengthPrefixedBytes(&in, &r.value)) {
      return DecodeError("planned op result");
    }
    r.status = static_cast<Status::Code>(code);
    rep.results.push_back(std::move(r));
  }
  return rep;
}

Bytes TxnStateChange::Encode() const {
  Bytes out;
  PutFixed64(&out, transid.Pack());
  PutFixed8(&out, static_cast<uint8_t>(state));
  return out;
}

Result<TxnStateChange> TxnStateChange::Decode(const Slice& payload) {
  Slice in = payload;
  TxnStateChange change;
  uint64_t packed;
  uint8_t state;
  if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &state)) {
    return DecodeError("txn state change");
  }
  change.transid = Transid::Unpack(packed);
  change.state = static_cast<DiscTxnState>(state);
  return change;
}

}  // namespace encompass::discprocess
