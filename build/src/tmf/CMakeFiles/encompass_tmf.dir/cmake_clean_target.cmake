file(REMOVE_RECURSE
  "libencompass_tmf.a"
)
