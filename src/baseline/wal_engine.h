// WalEngine: the conventional comparator the paper positions TMF against —
// a single-system transaction engine with a Write-Ahead Log and
// halt-and-restart crash recovery:
//   * every update appends a log record (before+after image) to a buffer,
//   * the WAL rule: the log is forced up to a page's last LSN before that
//     page may be flushed,
//   * commit forces the log (the classical per-commit force TMF's
//     checkpoint-to-backup scheme avoids on the update path),
//   * a crash halts the WHOLE system: all in-flight transactions die, and
//     the system is unavailable for the duration of restart recovery
//     (analysis + redo + undo over the log since the last checkpoint).
//
// Time is modeled by returned costs, so benchmarks can charge simulated
// time without the engine living inside the actor world.

#ifndef ENCOMPASS_BASELINE_WAL_ENGINE_H_
#define ENCOMPASS_BASELINE_WAL_ENGINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"

namespace encompass::baseline {

/// Cost/behaviour knobs.
struct WalEngineConfig {
  SimDuration log_force_latency = Millis(8);  ///< one sequential force
  SimDuration page_io_latency = Millis(10);   ///< one random page I/O
  SimDuration record_cpu_cost = Micros(20);   ///< per log record processed
  /// Ablation: force the log on EVERY update (strict write-through WAL)
  /// instead of only at commit. This is the cost the paper's checkpoint
  /// mechanism eliminates.
  bool force_log_each_update = false;
};

/// Transaction handle.
using TxnId = uint64_t;

/// Conventional WAL-based engine.
class WalEngine {
 public:
  explicit WalEngine(WalEngineConfig config = {}) : config_(config) {}

  /// Starts a transaction (crashes if the system is halted).
  TxnId Begin();

  /// Reads a key in a transaction's view. Cost is added to *cost.
  Result<std::string> Read(TxnId txn, const std::string& key,
                           SimDuration* cost);

  /// Writes key=value. Appends a log record; data stays in the buffer pool.
  Status Update(TxnId txn, const std::string& key, const std::string& value,
                SimDuration* cost);

  /// Commits: forces the log through this transaction's records.
  Status Commit(TxnId txn, SimDuration* cost);

  /// Aborts: applies before-images from the in-memory log tail.
  Status Abort(TxnId txn, SimDuration* cost);

  /// Flushes all dirty pages and writes a checkpoint record (forcing the
  /// log first, per the WAL rule). Returns the time taken.
  SimDuration TakeCheckpoint();

  /// System crash: the buffer pool and unforced log suffix vanish; every
  /// active transaction dies; the engine is down until Restart().
  void Crash();

  /// Halt-and-restart recovery: scans the durable log from the last
  /// checkpoint (redo committed work, undo losers). Returns the outage
  /// duration. The engine is available again afterwards.
  SimDuration Restart();

  bool available() const { return !halted_; }

  /// Committed, durable-after-recovery value of a key (test/verify hook).
  Result<std::string> DurableValue(const std::string& key) const;

  // -- Introspection for benchmarks -------------------------------------------
  uint64_t log_records_since_checkpoint() const {
    return static_cast<uint64_t>(durable_log_.size() + log_buffer_.size()) >
                   checkpoint_index_
               ? durable_log_.size() + log_buffer_.size() - checkpoint_index_
               : 0;
  }
  uint64_t forces() const { return forces_; }
  uint64_t active_transactions() const { return active_.size(); }

 private:
  struct LogRecord {
    TxnId txn;
    enum class Kind : uint8_t { kUpdate, kCommit, kAbort, kCheckpoint } kind;
    std::string key;
    std::string before;
    std::string after;
    bool had_before = false;
    /// kCheckpoint only: the active-transaction table at checkpoint time
    /// (needed to undo losers whose dirty pages the checkpoint stole).
    std::vector<TxnId> active_at_checkpoint;
  };

  void Append(LogRecord record);
  SimDuration ForceLog();

  WalEngineConfig config_;
  bool halted_ = false;
  TxnId next_txn_ = 1;
  std::set<TxnId> active_;

  // Buffer pool: the current (possibly uncommitted) contents; lost on crash.
  std::map<std::string, std::string> buffer_;
  std::set<std::string> deleted_in_buffer_;
  // Disk pages: only updated by checkpoints (flush-all for simplicity).
  std::map<std::string, std::string> disk_;

  std::vector<LogRecord> durable_log_;  // forced
  std::vector<LogRecord> log_buffer_;   // unforced tail
  size_t checkpoint_index_ = 0;         // durable log position of last ckpt
  uint64_t forces_ = 0;
};

}  // namespace encompass::baseline

#endif  // ENCOMPASS_BASELINE_WAL_ENGINE_H_
