file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_storage.dir/bench_e6_storage.cc.o"
  "CMakeFiles/bench_e6_storage.dir/bench_e6_storage.cc.o.d"
  "bench_e6_storage"
  "bench_e6_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
