
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_manufacturing.cc" "bench/CMakeFiles/bench_fig4_manufacturing.dir/bench_fig4_manufacturing.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_manufacturing.dir/bench_fig4_manufacturing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/manufacturing/CMakeFiles/encompass_mfg.dir/DependInfo.cmake"
  "/root/repo/build/src/encompass/CMakeFiles/encompass_app.dir/DependInfo.cmake"
  "/root/repo/build/src/tmf/CMakeFiles/encompass_tmf.dir/DependInfo.cmake"
  "/root/repo/build/src/discprocess/CMakeFiles/encompass_discprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/encompass_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/encompass_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/encompass_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/encompass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encompass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/encompass_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
