// The transaction state machine of the paper's Figure 3:
//
//        BEGIN            END (phase 1)        (phase 2)
//   ──► ACTIVE ─────────► ENDING ────────────► ENDED
//          │                 │ failure
//          │ failure/abort   ▼
//          └──────────────► ABORTING ──backout──► ABORTED
//
// "Aborting"/"ending" are parallel states, as are "aborted"/"ended". Once
// ended or aborted completes, the transid leaves the system.

#ifndef ENCOMPASS_TMF_TRANSACTION_STATE_H_
#define ENCOMPASS_TMF_TRANSACTION_STATE_H_

#include <cstdint>

namespace encompass::tmf {

/// Transaction states (Figure 3).
enum class TxnState : uint8_t {
  kActive = 0,    ///< after BEGIN-TRANSACTION, before commit/abort requested
  kEnding = 1,    ///< END requested; audit being forced (phase one)
  kEnded = 2,     ///< commit record written; locks being released (phase two)
  kAborting = 3,  ///< abort decided; backout in progress, locks held
  kAborted = 4,   ///< backout complete; locks being released
};

/// Number of TxnState values (for dense per-transition tables).
constexpr int kNumTxnStates = 5;

const char* TxnStateName(TxnState state);

/// True if `from` -> `to` is a legal transition per Figure 3.
bool LegalTransition(TxnState from, TxnState to);

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_TRANSACTION_STATE_H_
