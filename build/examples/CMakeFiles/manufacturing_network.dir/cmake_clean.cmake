file(REMOVE_RECURSE
  "CMakeFiles/manufacturing_network.dir/manufacturing_network.cpp.o"
  "CMakeFiles/manufacturing_network.dir/manufacturing_network.cpp.o.d"
  "manufacturing_network"
  "manufacturing_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacturing_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
