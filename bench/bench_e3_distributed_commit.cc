// E3 — the distributed commit protocol. Measures phase-1/phase-2 cost as a
// function of the number of participating nodes, and demonstrates the abort
// paths: a node inaccessible at phase-1 time forces the commit attempt to
// fail; a partition during phase two never blocks the home node's
// END-TRANSACTION (locks on the inaccessible node stay held until the
// network heals). Also shows the broadcast-locally / targeted-remotely
// design decision (ablation: what full network broadcast would cost).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "test_util.h"
#include "tmf/tmf_protocol.h"

namespace encompass::bench {
namespace {

using testutil::TestClient;

struct DistRig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<app::Deployment> deploy;
  TestClient* client = nullptr;
  std::unique_ptr<tmf::FileSystem> fs;
};

/// N nodes, each with one audited file "fN"; node 1 is the client's home.
DistRig MakeDistRig(uint64_t seed, int nodes) {
  DistRig rig;
  rig.sim = std::make_unique<sim::Simulation>(seed);
  rig.deploy = std::make_unique<app::Deployment>(rig.sim.get());
  for (int n = 1; n <= nodes; ++n) {
    app::NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{
        "$DATA" + std::to_string(n),
        {app::FileSpec{"f" + std::to_string(n)}},
        {}}};
    rig.deploy->AddNode(spec);
  }
  rig.deploy->LinkAll();
  for (int n = 1; n <= nodes; ++n) {
    rig.deploy->DefineFile("f" + std::to_string(n), static_cast<net::NodeId>(n),
                           "$DATA" + std::to_string(n));
  }
  rig.client = rig.deploy->GetNode(1)->node()->Spawn<TestClient>(2);
  rig.fs = std::make_unique<tmf::FileSystem>(rig.client, &rig.deploy->catalog());
  rig.sim->Run();
  return rig;
}

/// Runs one transaction that writes a record on each of `participants`
/// nodes, then commits. Returns commit latency (or -1).
SimDuration RunDistributedTxn(DistRig& rig, int participants, int txn_no) {
  auto* begin = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  rig.sim->Run();
  if (!begin->status.ok()) return -1;
  auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
  for (int n = 1; n <= participants; ++n) {
    bool ok = false;
    rig.client->set_current_transid(transid->Pack());
    rig.fs->Insert("f" + std::to_string(n),
                   Slice("k" + std::to_string(txn_no)), Slice("v"),
                   [&ok](const Status& s, const Bytes&) { ok = s.ok(); });
    rig.client->set_current_transid(0);
    rig.sim->Run();
    if (!ok) return -1;
  }
  SimTime start = rig.sim->Now();
  auto* end = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                  tmf::EncodeTransidPayload(*transid),
                                  transid->Pack());
  // Measure at the END reply (trailing phase-2 deliveries don't count
  // against commit latency), then drain remaining events.
  SimDuration latency = -1;
  for (int i = 0; i < 100000 && !end->done; ++i) {
    rig.sim->RunFor(Micros(200));
    if (end->done) latency = rig.sim->Now() - start;
  }
  if (end->done && latency < 0) latency = rig.sim->Now() - start;
  rig.sim->Run();
  return end->status.ok() ? latency : -1;
}

void TableCommitCostVsParticipants() {
  Header("E3.a commit cost vs participating nodes");
  printf("%14s %16s %14s %14s %16s\n", "participants", "commit (ms)",
         "phase1 msgs", "remote begins", "broadcasts");
  for (int participants : {1, 2, 3, 4, 6}) {
    DistRig rig = MakeDistRig(61, /*nodes=*/6);
    // Warm one txn, then measure the second.
    RunDistributedTxn(rig, participants, 0);
    auto& stats = rig.sim->GetStats();
    int64_t p1_before = stats.Counter("tmf.phase1_sent");
    int64_t rb_before = stats.Counter("tmf.remote_begins");
    int64_t bc_before = stats.Counter("tmf.state_broadcasts");
    SimDuration latency = RunDistributedTxn(rig, participants, 1);
    printf("%14d %16.2f %14lld %14lld %16lld\n", participants,
           static_cast<double>(latency) / 1e3,
           (long long)(stats.Counter("tmf.phase1_sent") - p1_before),
           (long long)(stats.Counter("tmf.remote_begins") - rb_before),
           (long long)(stats.Counter("tmf.state_broadcasts") - bc_before));
  }
  printf("(phase-1 messages = participants-1, targeted; within a node,\n"
         " state changes broadcast to all CPUs over the IPC bus)\n");
}

void TableBroadcastAblation() {
  Header("E3.b ablation: targeted notification vs broadcast-to-all-nodes");
  // The paper chose to notify only participating nodes. Count the network
  // messages a broadcast-to-everyone design would have sent instead.
  DistRig rig = MakeDistRig(67, /*nodes=*/6);
  const int kTxns = 20;
  for (int i = 0; i < kTxns; ++i) {
    RunDistributedTxn(rig, /*participants=*/2, i);
  }
  auto& stats = rig.sim->GetStats();
  long long actual = stats.Counter("tmf.phase1_sent") +
                     stats.Counter("tmf.safe_queued") +
                     stats.Counter("tmf.remote_begins");
  // Broadcast design: every state change (4 per txn) to every other node.
  long long broadcast = static_cast<long long>(kTxns) * 4 * (6 - 1);
  ReportSimStats("e3b", rig.sim->GetStats());
  ReportValue("e3b.targeted_msgs", static_cast<double>(actual));
  printf("targeted (paper's design) : %lld TMP network messages\n", actual);
  printf("broadcast-to-all ablation : %lld TMP network messages (%.1fx)\n",
         broadcast, static_cast<double>(broadcast) / static_cast<double>(actual));
}

void TableAbortPaths() {
  Header("E3.c protocol failure paths");
  printf("%-52s %10s\n", "scenario", "outcome");
  // Participant inaccessible at phase 1.
  {
    DistRig rig = MakeDistRig(71, 3);
    auto* begin = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
    rig.sim->Run();
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    bool ok = false;
    rig.client->set_current_transid(transid->Pack());
    rig.fs->Insert("f2", Slice("k"), Slice("v"),
                   [&ok](const Status& s, const Bytes&) { ok = s.ok(); });
    rig.client->set_current_transid(0);
    rig.sim->Run();
    rig.deploy->cluster().IsolateNode(2);  // before END
    auto* end = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                    tmf::EncodeTransidPayload(*transid),
                                    transid->Pack());
    rig.sim->RunFor(Seconds(10));
    printf("%-52s %10s\n", "participant inaccessible at phase 1",
           end->done && end->status.IsAborted() ? "aborted" : "?!");
  }
  // Partition during phase 2: home commit completes; remote locks held.
  {
    DistRig rig = MakeDistRig(73, 2);
    auto* begin = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
    rig.sim->Run();
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    rig.client->set_current_transid(transid->Pack());
    rig.fs->Insert("f2", Slice("k"), Slice("v"),
                   [](const Status&, const Bytes&) {});
    rig.client->set_current_transid(0);
    rig.sim->Run();
    auto* end = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                    tmf::EncodeTransidPayload(*transid),
                                    transid->Pack());
    // Cut the link exactly at the commit record.
    auto* mat = &rig.deploy->GetNode(1)->storage().monitor_trail;
    for (int i = 0; i < 2000 && mat->Lookup(*transid) != 1; ++i) {
      rig.sim->RunFor(Micros(500));
    }
    rig.deploy->cluster().CutLink(1, 2);
    rig.sim->RunFor(Seconds(2));
    bool home_done = end->done && end->status.ok();
    size_t remote_locks =
        rig.deploy->GetNode(2)->disc("$DATA2")->locks().held_count();
    printf("%-52s %10s\n", "partition during phase 2: home END completes",
           home_done ? "yes" : "NO");
    printf("%-52s %10zu\n", "  remote locks held while inaccessible",
           remote_locks);
    rig.deploy->cluster().RestoreLink(1, 2);
    rig.sim->RunFor(Seconds(5));
    printf("%-52s %10zu\n", "  remote locks after heal (safe delivery)",
           rig.deploy->GetNode(2)->disc("$DATA2")->locks().held_count());
  }
}

void BM_DistributedCommit(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  DistRig rig = MakeDistRig(79, 6);
  SimDuration total = 0;
  int64_t n = 0;
  for (auto _ : state) {
    SimDuration latency = RunDistributedTxn(rig, participants, static_cast<int>(n));
    if (latency > 0) total += latency;
    ++n;
  }
  state.counters["sim_ms_commit"] = benchmark::Counter(
      static_cast<double>(total) / 1e3 / static_cast<double>(n));
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_DistributedCommit)->Arg(1)->Arg(2)->Arg(4)->Iterations(20);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e3_distributed_commit");
  encompass::bench::ReportMeta(/*seed=*/61);
  printf("E3: the distributed two-phase commit protocol\n");
  encompass::bench::TableCommitCostVsParticipants();
  encompass::bench::TableBroadcastAblation();
  encompass::bench::TableAbortPaths();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
