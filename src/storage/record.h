// Record: the logical data record of the ENCOMPASS data base — a set of
// named fields, serialized deterministically. The data dictionary (schema)
// names the fields that serve as alternate (secondary) keys.

#ifndef ENCOMPASS_STORAGE_RECORD_H_
#define ENCOMPASS_STORAGE_RECORD_H_

#include <map>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/slice.h"

namespace encompass::storage {

/// A logical record: ordered field name -> value map.
class Record {
 public:
  Record() = default;

  /// Builder-style field setter.
  Record& Set(const std::string& field, const std::string& value) {
    fields_[field] = value;
    return *this;
  }

  /// Value of a field, or "" if absent.
  std::string Get(const std::string& field) const {
    auto it = fields_.find(field);
    return it == fields_.end() ? "" : it->second;
  }

  bool Has(const std::string& field) const { return fields_.count(field) > 0; }
  size_t field_count() const { return fields_.size(); }
  const std::map<std::string, std::string>& fields() const { return fields_; }

  /// Deterministic serialization (fields in name order).
  Bytes Encode() const;

  /// Parses an encoded record; Corruption on malformed input.
  static Result<Record> Decode(const Slice& data);

  friend bool operator==(const Record& a, const Record& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::map<std::string, std::string> fields_;
};

/// Data-dictionary entry for a file: which fields are alternate keys.
/// (The primary key is the record's file key, stored outside the record.)
struct FileSchema {
  std::vector<std::string> alternate_keys;
};

}  // namespace encompass::storage

#endif  // ENCOMPASS_STORAGE_RECORD_H_
