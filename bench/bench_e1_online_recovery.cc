// E1 — "Recovery ... does not require system halt or restart. Transactions
// uninvolved in the failure continue processing." Compares the throughput
// timeline of TMF across a processor failure against a conventional WAL
// system across a crash + halt-and-restart recovery. The shape to expect:
// TMF shows a brief dip (only transactions touching the failed module are
// backed out and restarted); the conventional system shows a total outage
// whose length grows with the log to recover.

#include <benchmark/benchmark.h>

#include "baseline/wal_engine.h"
#include "bench_util.h"

namespace encompass::bench {
namespace {

void TableTmfTimeline() {
  Header("E1.a TMF: committed transactions per 500ms bucket (CPU fails at 2s)");
  BankRig rig = MakeBankRig(/*seed=*/41, /*cpus=*/4, /*accounts=*/100,
                            /*terminals=*/8, /*iterations=*/UINT64_MAX);
  printf("%10s %14s %10s\n", "t (s)", "commits/bucket", "event");
  uint64_t last = 0;
  for (int bucket = 0; bucket < 12; ++bucket) {
    if (bucket == 4) {
      rig.node->node()->FailCpu(1);  // DISCPROCESS primary dies
    }
    rig.sim->RunFor(Millis(500));
    uint64_t now_committed = rig.Primary()->transactions_committed();
    printf("%10.1f %14llu %10s\n",
           static_cast<double>(rig.sim->Now()) / 1e6,
           (unsigned long long)(now_committed - last),
           bucket == 4 ? "CPU FAIL" : "");
    last = now_committed;
  }
  printf("takeovers=%lld restarts=%llu failed=%llu (service never stopped)\n",
         (long long)rig.sim->GetStats().Counter("os.takeovers"),
         (unsigned long long)rig.Primary()->transactions_restarted(),
         (unsigned long long)rig.Primary()->programs_failed());
}

void TableBaselineTimeline() {
  Header("E1.b conventional WAL: crash at 2s halts everything until restart");
  baseline::WalEngine engine;
  Random rng(41);
  printf("%10s %14s %10s\n", "t (s)", "commits/bucket", "event");
  SimTime now = 0;
  SimTime crash_at = Seconds(2);
  bool crashed = false;
  SimTime recovered_at = 0;
  for (int bucket = 0; bucket < 12; ++bucket) {
    SimTime bucket_end = (bucket + 1) * Millis(500);
    uint64_t commits = 0;
    const char* event = "";
    while (now < bucket_end) {
      if (!crashed && now >= crash_at) {
        // Crash: all in-flight transactions die; the system halts.
        engine.Crash();
        SimDuration outage = engine.Restart();
        crashed = true;
        recovered_at = now + outage;
        event = "CRASH+RESTART";
      }
      if (crashed && now < recovered_at) {
        now = recovered_at;  // total outage: no work at all
        continue;
      }
      // One transaction: two updates + commit.
      SimDuration cost = 0;
      baseline::TxnId t = engine.Begin();
      engine.Update(t, "k" + std::to_string(rng.Uniform(100)), "v", &cost);
      engine.Update(t, "k" + std::to_string(rng.Uniform(100)), "v", &cost);
      engine.Commit(t, &cost);
      now += cost + Micros(500);
      if (now <= bucket_end) ++commits;
    }
    printf("%10.1f %14llu %10s\n", static_cast<double>(bucket_end) / 1e6,
           (unsigned long long)commits, event);
  }
}

void TableOutageVsLog() {
  Header("E1.c conventional restart outage grows with log since checkpoint");
  printf("%16s %18s\n", "txns since ckpt", "restart outage (s)");
  for (int txns : {100, 1000, 5000, 20000}) {
    baseline::WalEngine engine;
    SimDuration cost = 0;
    for (int i = 0; i < txns; ++i) {
      baseline::TxnId t = engine.Begin();
      engine.Update(t, "k" + std::to_string(i % 500), "v", &cost);
      engine.Commit(t, &cost);
    }
    engine.Crash();
    SimDuration outage = engine.Restart();
    printf("%16d %18.3f\n", txns, static_cast<double>(outage) / 1e6);
  }
  printf("(TMF's equivalent number is ~0: no restart pass exists; only the\n"
         " transactions on the failed module are backed out, online)\n");
}

void BM_TmfThroughFailure(benchmark::State& state) {
  uint64_t committed = 0;
  SimTime elapsed = 0;
  for (auto _ : state) {
    BankRig rig = MakeBankRig(/*seed=*/43, 4, 100, 8, 20);
    rig.sim->RunFor(Millis(100));
    rig.node->node()->FailCpu(1);
    rig.sim->RunFor(Seconds(600));
    rig.sim->Run();
    committed += rig.Primary()->transactions_committed();
    elapsed += rig.sim->Now();
  }
  state.counters["sim_txn_per_s"] =
      benchmark::Counter(TxnPerSec(committed, elapsed));
  state.SetItemsProcessed(static_cast<int64_t>(committed));
}
BENCHMARK(BM_TmfThroughFailure);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e1_online_recovery");
  encompass::bench::ReportMeta(/*seed=*/41);
  printf("E1: online recovery (TMF) vs halt-and-restart (conventional)\n");
  encompass::bench::TableTmfTimeline();
  encompass::bench::TableBaselineTimeline();
  encompass::bench::TableOutageVsLog();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
