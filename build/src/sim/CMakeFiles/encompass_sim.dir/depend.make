# Empty dependencies file for encompass_sim.
# This may be replaced when dependencies are built.
