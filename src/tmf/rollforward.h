// ROLLFORWARD: recovery from total node failure. "TMF's approach ... is
// based on occasional archived copies of audited data base files, plus an
// archive of all audit trails written since the data base files were
// archived. TMF reconstructs any files open at the time of a total node
// failure by using the after-images from the audit trail to reapply the
// updates of committed transactions. ROLLFORWARD negotiates with other
// nodes of the network about transactions which were in 'ending' state at
// the time of the node failure."
//
// This is a utility over durable objects (archives, trails, the Monitor
// Audit Trail), run after the node reloads; it is not a process.

#ifndef ENCOMPASS_TMF_ROLLFORWARD_H_
#define ENCOMPASS_TMF_ROLLFORWARD_H_

#include <functional>
#include <vector>

#include "audit/audit_trail.h"
#include "common/result.h"
#include "storage/volume.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

/// Inputs to one volume's rollforward.
struct RollforwardInput {
  storage::Volume* volume = nullptr;          ///< target volume to rebuild
  const Bytes* archive = nullptr;             ///< archived copy of the volume
  const audit::AuditTrail* trail = nullptr;   ///< this volume's audit trail
  uint64_t archive_lsn = 0;                   ///< trail LSN at archive time
  const audit::MonitorAuditTrail* monitor_trail = nullptr;  ///< local MAT
  /// Negotiation with other nodes for transactions whose local disposition
  /// is unknown (they were in "ending" at failure time). Unknown after
  /// negotiation means the updates are discarded (presumed abort).
  std::function<Disposition(const Transid&)> resolve_remote;
};

/// What a rollforward run did.
struct RollforwardReport {
  size_t redo_considered = 0;   ///< durable after-images since the archive
  size_t redo_applied = 0;      ///< images of committed transactions applied
  size_t txns_committed = 0;    ///< distinct committed transactions replayed
  size_t txns_discarded = 0;    ///< distinct aborted/unknown transactions
  size_t negotiated = 0;        ///< dispositions resolved via other nodes
};

/// Rebuilds `input.volume` from the archive plus committed after-images.
/// The volume is flushed (fully durable) on success.
Result<RollforwardReport> Rollforward(const RollforwardInput& input);

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_ROLLFORWARD_H_
