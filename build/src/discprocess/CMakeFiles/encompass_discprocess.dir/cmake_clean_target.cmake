file(REMOVE_RECURSE
  "libencompass_discprocess.a"
)
