// Robustness property tests:
//  * LockManager against a reference model under random workloads,
//  * every wire decoder against random byte soup (must reject, never crash,
//    never read out of bounds),
//  * ROLLFORWARD edge cases (idempotence, deletes, corrupt archive).

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "audit/audit_process.h"
#include "common/random.h"
#include "discprocess/disc_protocol.h"
#include "discprocess/lock_manager.h"
#include "storage/record.h"
#include "tmf/rollforward.h"
#include "tmf/tmf_protocol.h"

namespace encompass {
namespace {

// ---------------------------------------------------------------------------
// LockManager vs reference model
// ---------------------------------------------------------------------------

class LockModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockModelTest, MatchesReferenceModel) {
  using discprocess::LockKey;
  using discprocess::LockManager;
  discprocess::LockManager lm;

  // Reference: per record-key holder + FIFO queue (record locks only; the
  // cross-granularity rules have dedicated tests).
  struct Unit {
    uint64_t holder = 0;
    std::deque<uint64_t> waiters;
  };
  std::map<std::string, Unit> model;
  Random rng(GetParam());

  auto key_of = [](uint64_t k) {
    return LockKey{"f", ToBytes("r" + std::to_string(k))};
  };
  auto name_of = [](uint64_t k) { return "r" + std::to_string(k); };

  for (int step = 0; step < 5000; ++step) {
    uint64_t owner = 1 + rng.Uniform(8);
    uint64_t k = rng.Uniform(12);
    Transid t{1, 0, owner};
    switch (rng.Uniform(3)) {
      case 0: {  // acquire
        auto result = lm.Acquire(t, key_of(k));
        Unit& u = model[name_of(k)];
        if (u.holder == owner) {
          EXPECT_EQ(result, LockManager::AcquireResult::kGranted);
        } else if (u.holder == 0 && u.waiters.empty()) {
          EXPECT_EQ(result, LockManager::AcquireResult::kGranted);
          u.holder = owner;
        } else {
          EXPECT_EQ(result, LockManager::AcquireResult::kQueued);
          bool queued = false;
          for (uint64_t w : u.waiters) queued |= (w == owner);
          if (!queued && u.holder != owner) u.waiters.push_back(owner);
        }
        break;
      }
      case 1: {  // release all of owner
        auto grants = lm.ReleaseAll(t);
        // Model: free this owner's holds, remove from queues, promote FIFO.
        std::vector<std::pair<std::string, uint64_t>> promoted;
        for (auto& [name, u] : model) {
          for (auto it = u.waiters.begin(); it != u.waiters.end();) {
            if (*it == owner) it = u.waiters.erase(it);
            else ++it;
          }
          if (u.holder == owner) {
            u.holder = 0;
            if (!u.waiters.empty()) {
              u.holder = u.waiters.front();
              u.waiters.pop_front();
              promoted.emplace_back(name, u.holder);
            }
          }
        }
        ASSERT_EQ(grants.size(), promoted.size());
        for (const auto& g : grants) {
          bool found = false;
          for (const auto& [name, who] : promoted) {
            if (ToString(g.key.record) == name && g.owner.seq == who) found = true;
          }
          EXPECT_TRUE(found);
        }
        break;
      }
      case 2: {  // cancel a wait
        bool removed = lm.CancelWait(t, key_of(k));
        Unit& u = model[name_of(k)];
        bool model_removed = false;
        for (auto it = u.waiters.begin(); it != u.waiters.end(); ++it) {
          if (*it == owner) {
            u.waiters.erase(it);
            model_removed = true;
            break;
          }
        }
        EXPECT_EQ(removed, model_removed);
        break;
      }
    }
    // Spot-check Holds agreement.
    uint64_t probe_owner = 1 + rng.Uniform(8);
    uint64_t probe_key = rng.Uniform(12);
    bool model_holds = model.count(name_of(probe_key)) &&
                       model[name_of(probe_key)].holder == probe_owner;
    EXPECT_EQ(lm.Holds(Transid{1, 0, probe_owner}, key_of(probe_key)),
              model_holds);
  }
  // Final census agreement.
  size_t model_held = 0, model_waiting = 0;
  for (const auto& [name, u] : model) {
    (void)name;
    model_held += u.holder != 0 ? 1 : 0;
    model_waiting += u.waiters.size();
  }
  EXPECT_EQ(lm.held_count(), model_held);
  EXPECT_EQ(lm.waiter_count(), model_waiting);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockModelTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Decoder robustness: random byte soup must never crash a decoder.
// ---------------------------------------------------------------------------

TEST(DecoderFuzzTest, RandomBytesNeverCrashDecoders) {
  Random rng(31337);
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng.Uniform(200);
    Bytes soup(len);
    for (auto& b : soup) b = static_cast<uint8_t>(rng.Next());
    Slice s1(soup);

    // Every decoder either succeeds (structurally valid by luck) or returns
    // an error; none may crash or over-read (ASAN-checked in debug runs).
    (void)storage::Record::Decode(Slice(soup));
    (void)discprocess::DiscRequest::Decode(Slice(soup));
    (void)discprocess::SeekReply::Decode(Slice(soup));
    (void)discprocess::ScanReply::Decode(Slice(soup));
    (void)discprocess::TxnStateChange::Decode(Slice(soup));
    (void)audit::DecodeAuditBatch(Slice(soup));
    (void)tmf::DecodeTxnList(Slice(soup));
    (void)tmf::DecodeTransidPayload(Slice(soup));
    Slice in1(soup);
    (void)audit::AuditRecord::Decode(&in1);
    Slice in2(soup);
    (void)audit::CompletionRecord::Decode(&in2);
  }
}

TEST(DecoderFuzzTest, TruncationsOfValidMessagesAreRejectedCleanly) {
  discprocess::DiscRequest req;
  req.file = "acct";
  req.key = ToBytes("some-key");
  req.record = ToBytes("some-record-payload");
  req.field = "site";
  req.value = "cupertino";
  req.max_records = 99;
  Bytes full = req.Encode();
  ASSERT_TRUE(discprocess::DiscRequest::Decode(Slice(full)).ok());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + cut);
    EXPECT_FALSE(discprocess::DiscRequest::Decode(Slice(truncated)).ok())
        << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// ROLLFORWARD edges
// ---------------------------------------------------------------------------

audit::AuditRecord MakeAudit(uint64_t seq, storage::MutationOp op,
                             const std::string& key, const std::string& before,
                             const std::string& after) {
  audit::AuditRecord rec;
  rec.transid = Transid{1, 0, seq};
  rec.volume = "$V";
  rec.file = "f";
  rec.op = op;
  rec.key = ToBytes(key);
  rec.before = ToBytes(before);
  rec.after = ToBytes(after);
  return rec;
}

TEST(RollforwardEdgeTest, RedoOfDeletesAndReruns) {
  storage::Volume vol("$V");
  storage::FileOptions opt;
  opt.audited = true;
  vol.CreateFile("f", storage::FileOrganization::kKeySequenced, opt);
  vol.Mutate("f", storage::MutationOp::kInsert, Slice("a"), Slice("1"));
  vol.Mutate("f", storage::MutationOp::kInsert, Slice("b"), Slice("2"));
  vol.Flush();
  Bytes archive = vol.Archive();

  audit::AuditTrail trail("AT");
  audit::MonitorAuditTrail mat;
  // Committed txn 1: update a, delete b, insert c.
  trail.Append(MakeAudit(1, storage::MutationOp::kUpdate, "a", "1", "10"));
  trail.Append(MakeAudit(1, storage::MutationOp::kDelete, "b", "2", ""));
  trail.Append(MakeAudit(1, storage::MutationOp::kInsert, "c", "", "30"));
  // Aborted txn 2 must be ignored.
  trail.Append(MakeAudit(2, storage::MutationOp::kUpdate, "a", "10", "666"));
  trail.Force();
  mat.AppendForced({Transid{1, 0, 1}, audit::Completion::kCommitted});
  mat.AppendForced({Transid{1, 0, 2}, audit::Completion::kAborted});

  tmf::RollforwardInput input;
  input.volume = &vol;
  input.archive = &archive;
  input.trail = &trail;
  input.archive_lsn = 0;
  input.monitor_trail = &mat;
  auto report = tmf::Rollforward(input);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->redo_applied, 3u);
  EXPECT_EQ(report->txns_committed, 1u);
  EXPECT_EQ(report->txns_discarded, 1u);
  EXPECT_EQ(ToString(vol.ReadRecord("f", Slice("a")).value), "10");
  EXPECT_TRUE(vol.ReadRecord("f", Slice("b")).status.IsNotFound());
  EXPECT_EQ(ToString(vol.ReadRecord("f", Slice("c")).value), "30");

  // Rollforward is idempotent: running it again yields the same state.
  auto report2 = tmf::Rollforward(input);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(ToString(vol.ReadRecord("f", Slice("a")).value), "10");
  EXPECT_TRUE(vol.ReadRecord("f", Slice("b")).status.IsNotFound());
  EXPECT_EQ(vol.Find("f")->record_count(), 2u);
}

TEST(RollforwardEdgeTest, UnknownDispositionWithoutResolverIsPresumedAbort) {
  // Regression: an after-image whose transid has no MAT completion record
  // and no resolve_remote to ask used to be counted through a
  // default-inserted disposition entry, skewing `negotiated`. It must fall
  // to presumed abort — discarded, with negotiated untouched.
  storage::Volume vol("$V");
  storage::FileOptions opt;
  opt.audited = true;
  vol.CreateFile("f", storage::FileOrganization::kKeySequenced, opt);
  vol.Mutate("f", storage::MutationOp::kInsert, Slice("a"), Slice("1"));
  vol.Flush();
  Bytes archive = vol.Archive();

  audit::AuditTrail trail("AT");
  audit::MonitorAuditTrail mat;  // empty: no completion record for txn 7
  trail.Append(MakeAudit(7, storage::MutationOp::kUpdate, "a", "1", "77"));
  trail.Force();

  tmf::RollforwardInput input;
  input.volume = &vol;
  input.archive = &archive;
  input.trail = &trail;
  input.archive_lsn = 0;
  input.monitor_trail = &mat;
  // No resolve_remote on purpose.
  auto report = tmf::Rollforward(input);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->redo_considered, 1u);
  EXPECT_EQ(report->redo_applied, 0u);
  EXPECT_EQ(report->txns_committed, 0u);
  EXPECT_EQ(report->txns_discarded, 1u);
  EXPECT_EQ(report->negotiated, 0u);
  // The image was discarded: the volume shows the archived value.
  EXPECT_EQ(ToString(vol.ReadRecord("f", Slice("a")).value), "1");

  // The same trail with a resolver that answers committed: exactly one
  // negotiated disposition, and the image applies.
  input.resolve_remote = [](const Transid&) {
    return tmf::Disposition::kCommitted;
  };
  auto report2 = tmf::Rollforward(input);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->negotiated, 1u);
  EXPECT_EQ(report2->txns_committed, 1u);
  EXPECT_EQ(report2->txns_discarded, 0u);
  EXPECT_EQ(ToString(vol.ReadRecord("f", Slice("a")).value), "77");
}

TEST(RollforwardEdgeTest, CorruptArchiveRejected) {
  storage::Volume vol("$V");
  vol.CreateFile("f", storage::FileOrganization::kKeySequenced);
  Bytes archive = vol.Archive();
  archive.resize(archive.size() / 2);
  audit::AuditTrail trail("AT");
  tmf::RollforwardInput input;
  input.volume = &vol;
  input.archive = &archive;
  input.trail = &trail;
  EXPECT_FALSE(tmf::Rollforward(input).ok());
}

TEST(RollforwardEdgeTest, MissingInputsRejected) {
  tmf::RollforwardInput input;
  EXPECT_TRUE(tmf::Rollforward(input).status().IsInvalidArgument());
}

TEST(RollforwardEdgeTest, UnknownWithoutResolverIsPresumedAbort) {
  storage::Volume vol("$V");
  storage::FileOptions opt;
  opt.audited = true;
  vol.CreateFile("f", storage::FileOrganization::kKeySequenced, opt);
  vol.Flush();
  Bytes archive = vol.Archive();
  audit::AuditTrail trail("AT");
  audit::MonitorAuditTrail mat;  // empty: no local disposition
  trail.Append(MakeAudit(9, storage::MutationOp::kInsert, "x", "", "v"));
  trail.Force();
  tmf::RollforwardInput input;
  input.volume = &vol;
  input.archive = &archive;
  input.trail = &trail;
  input.monitor_trail = &mat;
  // No resolve_remote: unknown disposition -> discard (presumed abort).
  auto report = tmf::Rollforward(input);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->redo_applied, 0u);
  EXPECT_EQ(report->txns_discarded, 1u);
  EXPECT_TRUE(vol.ReadRecord("f", Slice("x")).status.IsNotFound());
}

}  // namespace
}  // namespace encompass
