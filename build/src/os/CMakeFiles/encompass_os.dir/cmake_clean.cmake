file(REMOVE_RECURSE
  "CMakeFiles/encompass_os.dir/cluster.cc.o"
  "CMakeFiles/encompass_os.dir/cluster.cc.o.d"
  "CMakeFiles/encompass_os.dir/node.cc.o"
  "CMakeFiles/encompass_os.dir/node.cc.o.d"
  "CMakeFiles/encompass_os.dir/process.cc.o"
  "CMakeFiles/encompass_os.dir/process.cc.o.d"
  "CMakeFiles/encompass_os.dir/process_pair.cc.o"
  "CMakeFiles/encompass_os.dir/process_pair.cc.o.d"
  "libencompass_os.a"
  "libencompass_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
