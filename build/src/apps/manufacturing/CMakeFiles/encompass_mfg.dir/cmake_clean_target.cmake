file(REMOVE_RECURSE
  "libencompass_mfg.a"
)
