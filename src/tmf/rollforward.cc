#include "tmf/rollforward.h"

#include <set>

#include "common/logging.h"

namespace encompass::tmf {

namespace {

/// Applies one committed after-image idempotently.
Status RedoApply(storage::Volume* volume, const audit::AuditRecord& rec) {
  switch (rec.op) {
    case storage::MutationOp::kInsert: {
      auto r = volume->Mutate(rec.file, storage::MutationOp::kInsert,
                              Slice(rec.key), Slice(rec.after));
      if (r.status.IsAlreadyExists()) {
        r = volume->Mutate(rec.file, storage::MutationOp::kUpdate, Slice(rec.key),
                           Slice(rec.after));
      }
      return r.status;
    }
    case storage::MutationOp::kUpdate: {
      auto r = volume->Mutate(rec.file, storage::MutationOp::kUpdate,
                              Slice(rec.key), Slice(rec.after));
      if (r.status.IsNotFound()) {
        r = volume->Mutate(rec.file, storage::MutationOp::kInsert, Slice(rec.key),
                           Slice(rec.after));
      }
      return r.status;
    }
    case storage::MutationOp::kDelete: {
      auto r = volume->Mutate(rec.file, storage::MutationOp::kDelete,
                              Slice(rec.key), Slice());
      if (r.status.IsNotFound()) return Status::Ok();  // already gone
      return r.status;
    }
  }
  return Status::InvalidArgument("bad audit op");
}

/// Disposition lookup that never inserts: a transid the plan never
/// classified falls to presumed abort.
Disposition LookupDisposition(const std::map<Transid, Disposition>& dispositions,
                              const Transid& t) {
  auto it = dispositions.find(t);
  return it == dispositions.end() ? Disposition::kUnknown : it->second;
}

}  // namespace

Result<RollforwardPlan> PlanRollforward(const RollforwardInput& input) {
  if (input.volume == nullptr || input.archive == nullptr ||
      input.trail == nullptr) {
    return Status::InvalidArgument("rollforward needs volume, archive, trail");
  }
  RollforwardPlan plan;
  plan.records = input.trail->DurableRecordsAfter(input.archive_lsn);
  for (const auto& rec : plan.records) {
    if (plan.dispositions.count(rec.transid)) continue;
    Disposition d = Disposition::kUnknown;
    if (input.monitor_trail != nullptr) {
      int r = input.monitor_trail->Lookup(rec.transid);
      if (r == 1) d = Disposition::kCommitted;
      else if (r == 0) d = Disposition::kAborted;
    }
    if (d == Disposition::kUnknown) plan.unresolved.push_back(rec.transid);
    plan.dispositions[rec.transid] = d;
  }
  return plan;
}

Result<RollforwardReport> ExecuteRollforward(const RollforwardInput& input,
                                             const RollforwardPlan& plan) {
  if (input.volume == nullptr || input.archive == nullptr) {
    return Status::InvalidArgument("rollforward needs volume, archive");
  }
  RollforwardReport report;
  report.redo_considered = plan.records.size();
  for (const Transid& t : plan.unresolved) {
    if (LookupDisposition(plan.dispositions, t) != Disposition::kUnknown) {
      ++report.negotiated;
    }
  }

  ENCOMPASS_RETURN_IF_ERROR(
      input.volume->RestoreFromArchive(Slice(*input.archive)));

  std::set<Transid> committed, discarded;
  for (const auto& rec : plan.records) {
    if (LookupDisposition(plan.dispositions, rec.transid) ==
        Disposition::kCommitted) {
      ENCOMPASS_RETURN_IF_ERROR(RedoApply(input.volume, rec));
      ++report.redo_applied;
      committed.insert(rec.transid);
    } else {
      // Aborted, or unknown even after negotiation: presumed abort — the
      // updates never reappear.
      discarded.insert(rec.transid);
    }
  }
  report.txns_committed = committed.size();
  report.txns_discarded = discarded.size();

  input.volume->Flush();
  return report;
}

Result<RollforwardReport> Rollforward(const RollforwardInput& input) {
  auto plan = PlanRollforward(input);
  ENCOMPASS_RETURN_IF_ERROR(plan.status());
  if (input.resolve_remote) {
    // Transactions in "ending" (or never resolved locally) at failure time:
    // negotiate with other nodes. Only definite answers update the plan.
    for (const Transid& t : plan->unresolved) {
      Disposition d = input.resolve_remote(t);
      if (d != Disposition::kUnknown) plan->dispositions[t] = d;
    }
  }
  return ExecuteRollforward(input, *plan);
}

}  // namespace encompass::tmf
