#include "os/process.h"

#include <cassert>

#include "common/logging.h"
#include "os/cluster.h"
#include "os/node.h"

namespace encompass::os {

Process::~Process() {
  *self_ = nullptr;  // disarm outstanding timers
}

void Process::Attach(Node* node, int cpu, net::Pid pid) {
  assert(node_ == nullptr && "process attached twice");
  node_ = node;
  cpu_ = cpu;
  pid_ = pid;
  stats_ = &node->sim()->GetStats();
  m_call_retries_ = stats_->RegisterCounter("os.call_retries");
  OnAttach();
}

net::ProcessId Process::id() const {
  return net::ProcessId{node_ ? node_->id() : net::NodeId{0}, pid_};
}

Cluster* Process::cluster() const { return node_->cluster(); }

sim::Simulation* Process::sim() const { return node_->sim(); }

std::string Process::DebugName() const { return id().ToString(); }

void Process::Trace(sim::TraceEventKind kind, uint64_t transid, uint32_t a,
                    uint32_t b) const {
  sim::TraceContext ctx{transid, active_trace_.span};
  sim()->RecordTrace(kind, ctx, id().node, a, b);
}

void Process::StampTrace(net::Message& msg) {
  const uint64_t transid =
      current_transid_ != 0 ? current_transid_ : active_trace_.transid;
  if (transid == 0) return;
  sim::TraceLog& log = sim()->GetTrace();
  if (!log.enabled()) return;
  msg.trace.transid = transid;
  msg.trace.span = log.NewSpan(id().node);
  sim()->RecordTrace(sim::TraceEventKind::kMsgSend, msg.trace, id().node,
                     msg.tag, msg.dst.node, active_trace_.span);
}

void Process::Send(const net::Address& dst, uint32_t tag, Bytes payload) {
  net::Message msg;
  msg.src = id();
  msg.dst = dst;
  msg.tag = tag;
  msg.transid = current_transid_;
  msg.payload = std::move(payload);
  StampTrace(msg);
  node_->Route(std::move(msg));
}

uint64_t Process::Call(const net::Address& dst, uint32_t tag, Bytes payload,
                       RpcCallback cb, CallOptions options) {
  net::Message msg;
  msg.src = id();
  msg.dst = dst;
  msg.tag = tag;
  msg.request_id = next_request_id_++;
  msg.transid = current_transid_;
  msg.payload = std::move(payload);
  StampTrace(msg);

  PendingCall pending;
  pending.original = msg;
  pending.cb = std::move(cb);
  pending.retries_left = options.retries;
  pending.timeout = options.timeout;
  pending.retry_backoff = options.retry_backoff;
  uint64_t request_id = msg.request_id;
  pending_calls_.emplace(request_id, std::move(pending));

  node_->Route(std::move(msg));
  StartCallTimer(request_id);
  return request_id;
}

void Process::StartCallTimer(uint64_t request_id) {
  auto it = pending_calls_.find(request_id);
  if (it == pending_calls_.end()) return;
  it->second.timer = SetTimer(it->second.timeout, [this, request_id]() {
    auto pit = pending_calls_.find(request_id);
    if (pit == pending_calls_.end()) return;
    if (pit->second.retries_left > 0) {
      // Transparent file-system retry: resend the identical request (same
      // request id). A name-addressed destination re-resolves at delivery,
      // so a retried request reaches the pair's new primary after takeover.
      --pit->second.retries_left;
      stats_->Incr(m_call_retries_);
      node_->Route(pit->second.original);
      StartCallTimer(request_id);
      return;
    }
    net::Message empty;
    empty.reply_to = request_id;
    ResolveCall(request_id, Status::Timeout("no reply from " +
                                            pit->second.original.dst.ToString()),
                empty);
  });
}

void Process::Reply(const net::Message& request, const Status& status,
                    Bytes payload) {
  if (request.request_id == 0) return;  // one-way message: nothing to answer
  net::Message msg;
  msg.src = id();
  msg.dst = net::Address(request.src);
  msg.tag = request.tag;
  msg.reply_to = request.request_id;
  msg.status = status.code();
  msg.status_text = status.message();
  msg.transid = request.transid;
  msg.payload = std::move(payload);
  StampTrace(msg);
  node_->Route(std::move(msg));
}

void Process::SendReply(net::ProcessId requester, uint32_t tag, uint64_t reply_to,
                        const Status& status, Bytes payload) {
  if (reply_to == 0) return;
  net::Message msg;
  msg.src = id();
  msg.dst = net::Address(requester);
  msg.tag = tag;
  msg.reply_to = reply_to;
  msg.status = status.code();
  msg.status_text = status.message();
  msg.payload = std::move(payload);
  StampTrace(msg);
  node_->Route(std::move(msg));
}

void Process::CancelCall(uint64_t request_id) {
  auto it = pending_calls_.find(request_id);
  if (it == pending_calls_.end()) return;
  CancelTimer(it->second.timer);
  pending_calls_.erase(it);
}

void Process::ResolveCall(uint64_t request_id, const Status& status,
                          const net::Message& msg) {
  auto it = pending_calls_.find(request_id);
  if (it == pending_calls_.end()) return;
  CancelTimer(it->second.timer);
  RpcCallback cb = std::move(it->second.cb);
  pending_calls_.erase(it);
  cb(status, msg);
}

uint64_t Process::SetTimer(SimDuration delay, std::function<void()> fn) {
  std::weak_ptr<Process*> guard = self_;
  // Timers inherit the trace context they were armed under, so causal chains
  // survive latency hops (audit-force delay, MAT force, disc service time).
  const sim::TraceContext ctx = active_trace_;
  // Pinned to the process's own node loop even when armed from setup code
  // or a global event, so CancelTimer from the node's events stays loop-local.
  return sim()->AfterOn(id().node, delay, [guard, ctx, fn = std::move(fn)]() {
    auto locked = guard.lock();
    if (!locked || *locked == nullptr) return;
    const sim::TraceContext saved = (*locked)->active_trace_;
    (*locked)->active_trace_ = ctx;
    fn();
    // fn may have destroyed the process; *locked is nulled in that case.
    if (*locked != nullptr) (*locked)->active_trace_ = saved;
  });
}

void Process::CancelTimer(uint64_t timer_id) {
  if (timer_id != 0) sim()->Cancel(timer_id);
}

void Process::DeliverToProcess(net::Message msg) {
  const sim::TraceContext saved = active_trace_;
  if (msg.trace.active()) {
    active_trace_ = msg.trace;
    sim()->RecordTrace(sim::TraceEventKind::kMsgDeliver, active_trace_,
                       id().node, msg.tag);
  } else if (msg.transid != 0) {
    // Untraced message carrying a file-system transid (e.g. injected by a
    // test client): adopt the transid so downstream work is attributable.
    active_trace_ = sim::TraceContext{msg.transid, 0};
  } else {
    active_trace_ = sim::TraceContext{};
  }
  // Dispatch may destroy this process (a handler can trigger a CPU failure
  // or respawn); only restore the context if we survived.
  std::weak_ptr<Process*> guard = self_;
  DispatchMessage(msg);
  if (auto locked = guard.lock(); locked && *locked != nullptr) {
    active_trace_ = saved;
  }
}

void Process::WithTraceContext(const sim::TraceContext& ctx,
                               const std::function<void()>& fn) {
  const sim::TraceContext saved = active_trace_;
  active_trace_ = ctx;
  std::weak_ptr<Process*> guard = self_;
  fn();
  if (auto locked = guard.lock(); locked && *locked != nullptr) {
    active_trace_ = saved;
  }
}

void Process::DispatchMessage(const net::Message& msg) {
  if (msg.is_reply()) {
    if (msg.tag == net::kTagSendFailed) {
      net::Message empty;
      empty.reply_to = msg.reply_to;
      // A send-failure may still be retried transparently.
      auto it = pending_calls_.find(msg.reply_to);
      if (it != pending_calls_.end() && it->second.retries_left > 0) {
        --it->second.retries_left;
        stats_->Incr(m_call_retries_);
        CancelTimer(it->second.timer);
        // Back off before resending: a fast failure (dead pid / unbound
        // name) usually means a takeover is in progress.
        uint64_t request_id = msg.reply_to;
        it->second.timer = SetTimer(it->second.retry_backoff, [this, request_id]() {
          auto pit = pending_calls_.find(request_id);
          if (pit == pending_calls_.end()) return;
          node_->Route(pit->second.original);
          StartCallTimer(request_id);
        });
        return;
      }
      ResolveCall(msg.reply_to,
                  Status(msg.status, "undeliverable"), empty);
      return;
    }
    Status status = (msg.status == Status::Code::kOk)
                        ? Status::Ok()
                        : Status(msg.status, msg.status_text);
    ResolveCall(msg.reply_to, status, msg);
    return;
  }
  OnMessage(msg);
}

}  // namespace encompass::os
