#include "discprocess/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace encompass::discprocess {

std::string LockKey::ToString() const {
  if (file_level()) return file + "/*";
  return file + "/" + encompass::ToString(record);
}

LockManager::FileTable& LockManager::InternFile(const std::string& file) {
  auto it = file_ids_.find(file);
  if (it != file_ids_.end()) return files_[it->second];
  uint32_t id = static_cast<uint32_t>(files_.size());
  file_ids_.emplace(file, id);
  files_.emplace_back();
  files_.back().name = file;
  return files_.back();
}

LockManager::FileTable* LockManager::FindFile(const std::string& file) {
  auto it = file_ids_.find(file);
  return it == file_ids_.end() ? nullptr : &files_[it->second];
}

const LockManager::FileTable* LockManager::FindFile(
    const std::string& file) const {
  auto it = file_ids_.find(file);
  return it == file_ids_.end() ? nullptr : &files_[it->second];
}

size_t LockManager::RecordsHeldByOther(const FileTable& ft,
                                       const Transid& owner) const {
  auto it = ft.held_by.find(owner.Pack());
  size_t own = it == ft.held_by.end() ? 0 : it->second;
  assert(own <= ft.held_records);
  return ft.held_records - own;
}

void LockManager::AddWait(const Transid& owner, const LockKey& key) {
  waits_[owner.Pack()].push_back(key);
  ++waiter_count_;
}

void LockManager::RemoveWait(const Transid& owner, const LockKey& key) {
  auto it = waits_.find(owner.Pack());
  if (it == waits_.end()) return;
  auto& keys = it->second;
  for (auto kit = keys.begin(); kit != keys.end(); ++kit) {
    if (*kit == key) {
      keys.erase(kit);
      --waiter_count_;
      break;
    }
  }
  if (keys.empty()) waits_.erase(it);
}

LockManager::AcquireResult LockManager::Acquire(const Transid& owner,
                                                const LockKey& key) {
  assert(owner.valid());
  FileTable& ft = InternFile(key.file);

  // Covered by the owner's file lock?
  if (!key.file_level() && ft.file_unit.holder == owner) {
    return AcquireResult::kGranted;
  }

  Unit& unit = key.file_level() ? ft.file_unit : ft.records[key.record];
  if (unit.holder == owner) return AcquireResult::kGranted;

  bool grantable;
  if (key.file_level()) {
    grantable = !unit.holder.valid() && unit.waiters.empty() &&
                RecordsHeldByOther(ft, owner) == 0;
  } else {
    grantable = !unit.holder.valid() && unit.waiters.empty() &&
                !(ft.file_unit.holder.valid() &&
                  !(ft.file_unit.holder == owner));
  }

  if (grantable) {
    unit.holder = owner;
    ++held_count_;
    if (!key.file_level()) {
      ++ft.held_records;
      ++ft.held_by[owner.Pack()];
    }
    owned_[owner].insert(key);
    return AcquireResult::kGranted;
  }
  // FIFO wait. The same owner never queues twice on one unit.
  for (const auto& w : unit.waiters) {
    if (w == owner) return AcquireResult::kQueued;
  }
  unit.waiters.push_back(owner);
  if (!key.file_level()) ft.waiting_records.insert(key.record);
  AddWait(owner, key);
  return AcquireResult::kQueued;
}

void LockManager::ForceGrant(const Transid& owner, const LockKey& key) {
  FileTable& ft = InternFile(key.file);
  Unit& unit = key.file_level() ? ft.file_unit : ft.records[key.record];
  if (unit.holder == owner) {
    owned_[owner].insert(key);
    return;
  }
  if (unit.holder.valid()) {
    // Reassignment (backup mirroring an out-of-order checkpoint): shift the
    // per-owner accounting; the old holder's owned_ entry goes stale, which
    // ReleaseAll tolerates by checking the live holder.
    if (!key.file_level()) {
      auto it = ft.held_by.find(unit.holder.Pack());
      if (it != ft.held_by.end() && --it->second == 0) ft.held_by.erase(it);
      ++ft.held_by[owner.Pack()];
    }
  } else {
    ++held_count_;
    if (!key.file_level()) {
      ++ft.held_records;
      ++ft.held_by[owner.Pack()];
    }
  }
  unit.holder = owner;
  owned_[owner].insert(key);
}

std::vector<LockGrant> LockManager::ReleaseAll(const Transid& owner) {
  std::vector<LockGrant> grants;
  auto oit = owned_.find(owner);
  // Files needing promotion / cleanup, in name order (owned_ iterates keys
  // sorted by (file, record), so insertion order is already by file name).
  std::vector<FileTable*> touched;
  std::vector<std::pair<FileTable*, Bytes>> released_records;

  if (oit != owned_.end()) {
    for (const auto& key : oit->second) {
      FileTable* ft = FindFile(key.file);
      if (ft == nullptr) continue;
      Unit* unit;
      if (key.file_level()) {
        unit = &ft->file_unit;
      } else {
        auto rit = ft->records.find(key.record);
        unit = rit == ft->records.end() ? nullptr : &rit->second;
      }
      if (unit != nullptr && unit->holder == owner) {
        unit->holder = Transid{};
        --held_count_;
        if (!key.file_level()) {
          --ft->held_records;
          auto hit = ft->held_by.find(owner.Pack());
          if (hit != ft->held_by.end() && --hit->second == 0) {
            ft->held_by.erase(hit);
          }
          released_records.emplace_back(ft, key.record);
        }
        if (touched.empty() || touched.back() != ft) touched.push_back(ft);
      }
    }
    owned_.erase(oit);
  }
  // Also drop this owner from every wait queue it is parked in (an aborting
  // transaction may be waiting somewhere).
  auto wit = waits_.find(owner.Pack());
  if (wit != waits_.end()) {
    for (const auto& key : wit->second) {
      FileTable* ft = FindFile(key.file);
      if (ft == nullptr) continue;
      Unit& unit = key.file_level() ? ft->file_unit
                                    : ft->records[key.record];
      for (auto qit = unit.waiters.begin(); qit != unit.waiters.end();) {
        if (*qit == owner) qit = unit.waiters.erase(qit);
        else ++qit;
      }
      if (!key.file_level() && unit.waiters.empty()) {
        ft->waiting_records.erase(key.record);
        if (!unit.holder.valid()) ft->records.erase(key.record);
      }
    }
    waiter_count_ -= wit->second.size();
    waits_.erase(wit);
  }

  for (FileTable* ft : touched) {
    PromoteWaiters(*ft, &grants);
  }
  // Drop record units the release left free and unwanted, keeping the hash
  // tables tight (the old map-based table erased all empty units here).
  for (auto& [ft, record] : released_records) {
    auto rit = ft->records.find(record);
    if (rit != ft->records.end() && !rit->second.holder.valid() &&
        rit->second.waiters.empty()) {
      ft->records.erase(rit);
    }
  }
  return grants;
}

void LockManager::PromoteWaiters(FileTable& ft,
                                 std::vector<LockGrant>* grants) {
  // Consider the file-level unit plus every record unit with waiters, in
  // byte order, and keep promoting until a pass grants nothing (a file-lock
  // grant can block later record grants and vice versa). This matches the
  // sorted full scan of the original implementation, so the grant sequence
  // is byte-identical; it merely skips units with nobody waiting.
  bool progress = true;
  while (progress) {
    progress = false;
    if (!ft.file_unit.holder.valid() && !ft.file_unit.waiters.empty()) {
      const Transid candidate = ft.file_unit.waiters.front();
      if (RecordsHeldByOther(ft, candidate) == 0) {
        ft.file_unit.holder = candidate;
        ++held_count_;
        LockKey key{ft.name, {}};
        owned_[candidate].insert(key);
        grants->push_back(LockGrant{candidate, key});
        ft.file_unit.waiters.pop_front();
        RemoveWait(candidate, key);
        progress = true;
      }
    }
    // Snapshot: grants during the pass may empty queues and mutate the set.
    std::vector<const Bytes*> waiting;
    waiting.reserve(ft.waiting_records.size());
    for (const Bytes& r : ft.waiting_records) waiting.push_back(&r);
    for (const Bytes* record : waiting) {
      auto rit = ft.records.find(*record);
      if (rit == ft.records.end()) continue;
      Unit& unit = rit->second;
      if (unit.holder.valid() || unit.waiters.empty()) continue;
      const Transid candidate = unit.waiters.front();
      if (ft.file_unit.holder.valid() && !(ft.file_unit.holder == candidate)) {
        continue;
      }
      unit.holder = candidate;
      ++held_count_;
      ++ft.held_records;
      ++ft.held_by[candidate.Pack()];
      LockKey key{ft.name, *record};
      owned_[candidate].insert(key);
      grants->push_back(LockGrant{candidate, key});
      unit.waiters.pop_front();
      RemoveWait(candidate, key);
      if (unit.waiters.empty()) ft.waiting_records.erase(*record);
      progress = true;
    }
  }
}

bool LockManager::CancelWait(const Transid& owner, const LockKey& key) {
  FileTable* ft = FindFile(key.file);
  if (ft == nullptr) return false;
  Unit* unit;
  if (key.file_level()) {
    unit = &ft->file_unit;
  } else {
    auto rit = ft->records.find(key.record);
    if (rit == ft->records.end()) return false;
    unit = &rit->second;
  }
  for (auto qit = unit->waiters.begin(); qit != unit->waiters.end(); ++qit) {
    if (*qit == owner) {
      unit->waiters.erase(qit);
      RemoveWait(owner, key);
      if (!key.file_level() && unit->waiters.empty()) {
        ft->waiting_records.erase(key.record);
        if (!unit->holder.valid()) ft->records.erase(key.record);
      }
      return true;
    }
  }
  return false;
}

bool LockManager::Holds(const Transid& owner, const LockKey& key) const {
  const FileTable* ft = FindFile(key.file);
  if (ft == nullptr) return false;
  if (ft->file_unit.holder == owner) return true;
  if (key.file_level()) return false;
  auto rit = ft->records.find(key.record);
  return rit != ft->records.end() && rit->second.holder == owner;
}

std::vector<LockGrant> LockManager::AllHeld() const {
  // Deterministic (file, record) order, matching the original sorted table.
  std::vector<const FileTable*> tables;
  tables.reserve(files_.size());
  for (const auto& ft : files_) tables.push_back(&ft);
  std::sort(tables.begin(), tables.end(),
            [](const FileTable* a, const FileTable* b) {
              return a->name < b->name;
            });
  std::vector<LockGrant> out;
  for (const FileTable* ft : tables) {
    if (ft->file_unit.holder.valid()) {
      out.push_back(LockGrant{ft->file_unit.holder, LockKey{ft->name, {}}});
    }
    std::vector<const Bytes*> keys;
    keys.reserve(ft->records.size());
    for (const auto& [record, unit] : ft->records) {
      if (unit.holder.valid()) keys.push_back(&record);
    }
    std::sort(keys.begin(), keys.end(), [](const Bytes* a, const Bytes* b) {
      return Slice(*a) < Slice(*b);
    });
    for (const Bytes* record : keys) {
      out.push_back(
          LockGrant{ft->records.at(*record).holder, LockKey{ft->name, *record}});
    }
  }
  return out;
}

std::vector<Transid> LockManager::Holders() const {
  std::vector<Transid> out;
  for (const auto& [owner, keys] : owned_) {
    (void)keys;
    out.push_back(owner);
  }
  return out;
}

}  // namespace encompass::discprocess
