#include "sim/event_queue.h"

#include <cassert>

namespace encompass::sim {

EventId EventQueue::Schedule(SimTime when, uint16_t exec_node, EventFn fn) {
  const uint64_t seq = next_seq_++;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    assert(slot < (1u << kSlotBits) && "too many concurrently pending events");
    slots_.push_back(1);
  }
  const uint32_t gen = slots_[slot];
  heap_.push(
      Event{EventKey{when, origin_, seq}, slot, gen, exec_node, std::move(fn)});
  ++live_count_;
  return (static_cast<EventId>(gen) << kSlotBits) | slot;
}

void EventQueue::ScheduleKeyed(const EventKey& key, uint16_t exec_node,
                               EventFn fn) {
  heap_.push(Event{key, kNoSlot, 0, exec_node, std::move(fn)});
  ++live_count_;
}

void EventQueue::Cancel(EventId id) {
  const auto slot = static_cast<uint32_t>(id & ((1u << kSlotBits) - 1));
  const auto gen = static_cast<uint32_t>(id >> kSlotBits) & kGenMask;
  // Live iff the id's generation matches its slot's current one. Id 0 (gen 0)
  // and arbitrary stale ids fail the match: generations are never 0.
  if (slot >= slots_.size() || slots_[slot] != gen) return;
  RetireSlot(slot);
  --live_count_;
  // The heap entry stays behind with the old generation stamped on it;
  // SkipCancelled drops it when it reaches the top.
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && Dead(heap_.top())) {
    heap_.pop();
  }
}

const EventKey* EventQueue::NextKey() const {
  SkipCancelled();
  return heap_.empty() ? nullptr : &heap_.top().key;
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? kNoDeadline : heap_.top().key.time;
}

EventFn EventQueue::PopNext(EventKey* key, uint16_t* exec_node) {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Event&>(heap_.top());
  *key = top.key;
  *exec_node = top.exec_node;
  EventFn fn = std::move(top.fn);
  if (top.slot != kNoSlot) RetireSlot(top.slot);
  heap_.pop();
  --live_count_;
  return fn;
}

}  // namespace encompass::sim
