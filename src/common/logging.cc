#include "common/logging.h"

namespace encompass {

LogLevel Logger::level_ = LogLevel::kWarn;

void Logger::Write(LogLevel level, const std::string& msg) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)], msg.c_str());
}

}  // namespace encompass
