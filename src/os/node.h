// Node: one Tandem "system" — up to 16 CPUs joined by dual interprocessor
// buses, a node-local process table and name registry, and failure-detection
// (regroup) broadcast. A Node delivers intra-node messages itself and hands
// inter-node messages to the Cluster's Network.

#ifndef ENCOMPASS_OS_NODE_H_
#define ENCOMPASS_OS_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/message.h"
#include "os/process.h"
#include "sim/simulation.h"

namespace encompass::os {

class Cluster;

/// Per-node tunables.
struct NodeConfig {
  int num_cpus = 4;                      ///< 2..16 per the paper
  SimDuration same_cpu_latency = Micros(2);
  SimDuration bus_latency = Micros(10);  ///< dual 13.5 MB/s interprocessor bus
  SimDuration regroup_delay = Millis(5); ///< CPU-failure detection latency
  /// CPU time charged per delivered message (handler execution). Messages
  /// queue when their destination CPU is busy — this is what makes adding
  /// processors increase throughput.
  SimDuration cpu_service_time = Micros(50);
};

/// One network node (a multi-processor Tandem system).
class Node {
 public:
  Node(Cluster* cluster, net::NodeId id, NodeConfig config);
  ~Node();

  net::NodeId id() const { return id_; }
  Cluster* cluster() const { return cluster_; }
  sim::Simulation* sim() const;
  const NodeConfig& config() const { return config_; }

  // -- Process management ----------------------------------------------------

  /// Creates a T on the given CPU and starts it. Returns nullptr if the CPU
  /// is down. The node owns the process.
  template <typename T, typename... Args>
  T* Spawn(int cpu, Args&&... args) {
    if (!CpuUp(cpu)) return nullptr;
    auto proc = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = proc.get();
    AdoptProcess(cpu, std::move(proc));
    return raw;
  }

  /// Destroys one process (normal termination, not a failure event).
  void Kill(net::Pid pid);

  /// Finds a live process by pid; nullptr if unknown or dead.
  Process* Find(net::Pid pid) const;

  /// Pids of all live processes (snapshot).
  std::vector<net::Pid> LivePids() const;

  // -- Name registry ----------------------------------------------------------

  /// Binds a symbolic name ("$DATA1") to a pid, replacing any prior binding.
  /// Process-pair takeover re-binds the name to the new primary.
  void RegisterName(const std::string& name, net::Pid pid);
  void UnregisterName(const std::string& name);
  /// 0 if unbound.
  net::Pid LookupName(const std::string& name) const;

  // -- CPU and bus failure ----------------------------------------------------

  bool CpuUp(int cpu) const;
  int AliveCpuCount() const;
  /// True when every CPU is down — total node failure.
  bool Dead() const { return AliveCpuCount() == 0; }

  /// Fails a CPU: every process on it is destroyed instantly; survivors get
  /// OnCpuDown after the regroup delay.
  void FailCpu(int cpu);
  /// Brings a failed CPU back (cold: no processes). Survivors get OnCpuUp.
  void ReloadCpu(int cpu);

  /// Dual interprocessor buses: X (0) and Y (1). Intra-node traffic uses the
  /// first up bus; with both down, cross-CPU messages are undeliverable.
  void SetBusUp(int bus, bool up);
  bool BusUp(int bus) const { return bus_up_[bus & 1]; }

  // -- Message plumbing (called by Process / Cluster) --------------------------

  /// Routes a message from a local process: intra-node over the bus, or to
  /// the network for a remote node.
  void Route(net::Message msg);

  /// Delivers a message arriving at this node (from the bus or the network):
  /// resolves a name address, finds the target process, and hands over.
  /// Takes ownership of the message — it is moved, not copied, into the
  /// target process. Undeliverable requests produce a send-failed notice.
  void DeliverLocal(net::Message msg);

  /// Reachability event from the network layer: broadcast to all processes.
  void PeerReachability(net::NodeId peer, bool up);

  /// Schedules delivery of a message after `latency`, serialized on the
  /// destination CPU's service queue (used for intra-node routing and for
  /// inbound network messages).
  void ScheduleDelivery(net::Message msg, SimDuration latency);

 private:
  struct CpuSlot {
    bool up = true;
    std::map<net::Pid, std::unique_ptr<Process>> processes;
  };

  struct Metrics {
    explicit Metrics(sim::Stats& stats);
    sim::MetricId cpu_failures, cpu_reloads, bus_failed, bus_restored;
    sim::MetricId bus_undeliverable, bus_x_msgs, bus_y_msgs, deliver_no_process;
  };

  void AdoptProcess(int cpu, std::unique_ptr<Process> proc);
  void SendFailureNotice(const net::Message& request, Status::Code code);
  /// Invokes fn(process) for every currently live process, robust to
  /// spawns/deaths during iteration.
  void Broadcast(const std::function<void(Process*)>& fn);

  Cluster* cluster_;
  net::NodeId id_;
  NodeConfig config_;
  Metrics metrics_;
  std::vector<CpuSlot> cpus_;
  std::vector<SimTime> cpu_free_;
  std::map<net::Pid, int> pid_to_cpu_;
  std::map<std::string, net::Pid> names_;
  bool bus_up_[2] = {true, true};
  net::Pid next_pid_ = 1;
};

}  // namespace encompass::os

#endif  // ENCOMPASS_OS_NODE_H_
