// ROLLFORWARD: recovery from total node failure. "TMF's approach ... is
// based on occasional archived copies of audited data base files, plus an
// archive of all audit trails written since the data base files were
// archived. TMF reconstructs any files open at the time of a total node
// failure by using the after-images from the audit trail to reapply the
// updates of committed transactions. ROLLFORWARD negotiates with other
// nodes of the network about transactions which were in 'ending' state at
// the time of the node failure."
//
// This is a utility over durable objects (archives, trails, the Monitor
// Audit Trail), run after the node reloads; it is not a process.
//
// Two entry points:
//  * Rollforward(input) — one-shot, with negotiation supplied as a
//    synchronous callback. Suits tests and tools that can answer inline.
//  * PlanRollforward / ExecuteRollforward — the split the real recovery
//    path uses: Plan classifies every transaction against the local MAT and
//    reports the still-unknown ("ending at failure time") transids; the
//    caller negotiates those with surviving TMPs however long that takes
//    (message round-trips in simulated time), writes the answers into the
//    plan, and Execute then rebuilds the volume.

#ifndef ENCOMPASS_TMF_ROLLFORWARD_H_
#define ENCOMPASS_TMF_ROLLFORWARD_H_

#include <functional>
#include <map>
#include <vector>

#include "audit/audit_trail.h"
#include "common/result.h"
#include "storage/volume.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

/// Inputs to one volume's rollforward.
struct RollforwardInput {
  storage::Volume* volume = nullptr;          ///< target volume to rebuild
  const Bytes* archive = nullptr;             ///< archived copy of the volume
  const audit::AuditTrail* trail = nullptr;   ///< this volume's audit trail
  uint64_t archive_lsn = 0;                   ///< trail LSN at archive time
  const audit::MonitorAuditTrail* monitor_trail = nullptr;  ///< local MAT
  /// Negotiation with other nodes for transactions whose local disposition
  /// is unknown (they were in "ending" at failure time). Unknown after
  /// negotiation means the updates are discarded (presumed abort). Used by
  /// the one-shot Rollforward() only; the Plan/Execute split negotiates
  /// between the two calls instead.
  std::function<Disposition(const Transid&)> resolve_remote;
};

/// Classification of the trail against the local MAT, ready to execute once
/// every negotiable disposition has been settled (or presumed aborted).
struct RollforwardPlan {
  /// Durable after-images past the archive LSN, in trail order.
  std::vector<audit::AuditRecord> records;
  /// Disposition per transid appearing in `records`. Plan fills this from
  /// the local MAT; the caller overwrites kUnknown entries with negotiated
  /// answers before Execute. Execute treats a transid absent from this map
  /// (never classified — e.g. records edge cases) as kUnknown: presumed
  /// abort, never a default-inserted entry that skews the accounting.
  std::map<Transid, Disposition> dispositions;
  /// Transids still kUnknown after local classification — the "ending
  /// state" set ROLLFORWARD negotiates with other nodes.
  std::vector<Transid> unresolved;
};

/// What a rollforward run did.
struct RollforwardReport {
  size_t redo_considered = 0;   ///< durable after-images since the archive
  size_t redo_applied = 0;      ///< images of committed transactions applied
  size_t txns_committed = 0;    ///< distinct committed transactions replayed
  size_t txns_discarded = 0;    ///< distinct aborted/unknown transactions
  /// Dispositions that were locally unknown and got a *definite* answer
  /// (committed or aborted) from negotiation. Negotiation attempts that
  /// still came back unknown are not counted — those transactions fall to
  /// presumed abort and appear in txns_discarded only.
  size_t negotiated = 0;
};

/// Reads the trail and classifies every transaction against the local MAT.
/// Does not touch the volume.
Result<RollforwardPlan> PlanRollforward(const RollforwardInput& input);

/// Rebuilds `input.volume` from the archive plus the plan's committed
/// after-images; flushes the volume (fully durable) on success.
/// `input.resolve_remote` is ignored here — negotiation already happened.
Result<RollforwardReport> ExecuteRollforward(const RollforwardInput& input,
                                             const RollforwardPlan& plan);

/// One-shot: Plan, negotiate via `input.resolve_remote` (if provided),
/// Execute.
Result<RollforwardReport> Rollforward(const RollforwardInput& input);

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_ROLLFORWARD_H_
