// Tests for the four-site manufacturing application (the paper's Figure 4):
// master-node-per-record global updates, suspense-file deferred
// propagation, node autonomy under partition, and post-heal convergence.

#include <gtest/gtest.h>

#include "apps/manufacturing/manufacturing.h"
#include "encompass/tcp.h"
#include "test_util.h"

namespace encompass::apps::manufacturing {
namespace {

using app::Deployment;
using app::FileSpec;
using app::NodeSpec;
using app::VolumeSpec;
using testutil::TestClient;

const std::vector<net::NodeId> kNodes = {1, 2, 3, 4};

class ManufacturingTest : public ::testing::Test {
 protected:
  ManufacturingTest() : sim_(47), deploy_(&sim_) {
    for (net::NodeId n : kNodes) {
      NodeSpec spec;
      spec.id = n;
      spec.node_config.num_cpus = 4;
      spec.volumes = {VolumeSpec{MfgVolume(n), {}, {}}};
      deploy_.AddNode(spec);
    }
    deploy_.LinkAll();
    EXPECT_TRUE(DeployManufacturing(&deploy_, kNodes).ok());
    for (net::NodeId n : kNodes) {
      AddMfgServerClass(&deploy_, n, kNodes);
      monitors_[n] = AddSuspenseMonitor(&deploy_, n, kNodes);
      clients_[n] = deploy_.GetNode(n)->node()->Spawn<TestClient>(2);
    }
    sim_.RunFor(Millis(10));
  }

  /// Runs BEGIN / SEND gupdate / END from a client on `via`.
  Status GlobalUpdate(net::NodeId via, const std::string& file,
                      const std::string& key, const std::string& val) {
    TestClient* client = clients_[via];
    auto* begin = client->CallRaw(net::Address(via, "$TMP"), tmf::kTmfBegin, {});
    sim_.RunFor(Millis(5));
    if (!begin->done || !begin->status.ok()) return Status::Unavailable("begin");
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    if (!transid.ok()) return transid.status();

    storage::Record req;
    req.Set("op", "gupdate").Set("file", file).Set("key", key).Set("val", val);
    auto* send = client->CallRaw(net::Address(via, GlobalServerClass()),
                                 app::kServerRequest, req.Encode(),
                                 transid->Pack());
    sim_.RunFor(Seconds(2));
    if (!send->done) return Status::Timeout("send");
    if (!send->status.ok()) {
      auto* abort = client->CallRaw(net::Address(via, "$TMP"), tmf::kTmfAbort,
                                    tmf::EncodeTransidPayload(*transid),
                                    transid->Pack());
      sim_.RunFor(Seconds(1));
      (void)abort;
      return send->status;
    }
    auto* end = client->CallRaw(net::Address(via, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(*transid),
                                transid->Pack());
    sim_.RunFor(Seconds(1));
    if (!end->done) return Status::Timeout("end");
    return end->status;
  }

  Status LocalUpdate(net::NodeId node, const std::string& file,
                     const std::string& key, const std::string& val) {
    TestClient* client = clients_[node];
    auto* begin = client->CallRaw(net::Address(node, "$TMP"), tmf::kTmfBegin, {});
    sim_.RunFor(Millis(5));
    if (!begin->done || !begin->status.ok()) return Status::Unavailable("begin");
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    storage::Record req;
    req.Set("op", "lupdate").Set("file", file).Set("key", key).Set("val", val);
    auto* send = client->CallRaw(net::Address(node, GlobalServerClass()),
                                 app::kServerRequest, req.Encode(),
                                 transid->Pack());
    sim_.RunFor(Seconds(1));
    if (!send->done || !send->status.ok()) return Status::IoError("send");
    auto* end = client->CallRaw(net::Address(node, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(*transid),
                                transid->Pack());
    sim_.RunFor(Seconds(1));
    return end->done ? end->status : Status::Timeout("end");
  }

  sim::Simulation sim_;
  Deployment deploy_;
  std::map<net::NodeId, SuspenseMonitor*> monitors_;
  std::map<net::NodeId, TestClient*> clients_;
};

TEST_F(ManufacturingTest, UpdateAtMasterPropagatesToAllCopies) {
  SeedGlobalRecord(&deploy_, kNodes, "item-master", "X100", "v1", /*master=*/1);
  EXPECT_TRUE(GlobalUpdate(1, "item-master", "X100", "v2").ok());
  // The master copy is updated synchronously (deferred updates for the
  // other copies were enqueued in the same transaction; the suspense
  // monitor drains them asynchronously).
  EXPECT_EQ(*CopyValue(&deploy_, 1, "item-master", "X100"), "v2");
  sim_.RunFor(Seconds(5));
  EXPECT_TRUE(Converged(&deploy_, kNodes, "item-master", "X100"));
  EXPECT_EQ(*CopyValue(&deploy_, 4, "item-master", "X100"), "v2");
  EXPECT_EQ(SuspenseDepth(&deploy_, 1), 0u);
  EXPECT_EQ(monitors_[1]->applied(), 3u);
}

TEST_F(ManufacturingTest, NonMasterNodeForwardsToMaster) {
  SeedGlobalRecord(&deploy_, kNodes, "bom", "B7", "rev1", /*master=*/2);
  // Originates at node 3; the record's master is node 2.
  EXPECT_TRUE(GlobalUpdate(3, "bom", "B7", "rev2").ok());
  EXPECT_EQ(*CopyValue(&deploy_, 2, "bom", "B7"), "rev2");  // master updated
  sim_.RunFor(Seconds(5));
  EXPECT_TRUE(Converged(&deploy_, kNodes, "bom", "B7"));
  EXPECT_EQ(SuspenseDepth(&deploy_, 2), 0u);  // master's queue fully drained
}

TEST_F(ManufacturingTest, PartitionAccumulatesDeferredUpdatesThenConverges) {
  SeedGlobalRecord(&deploy_, kNodes, "po-header", "PO1", "open", /*master=*/1);
  deploy_.cluster().IsolateNode(4);
  sim_.RunFor(Millis(100));

  EXPECT_TRUE(GlobalUpdate(1, "po-header", "PO1", "approved").ok());
  EXPECT_TRUE(GlobalUpdate(1, "po-header", "PO1", "shipped").ok());
  sim_.RunFor(Seconds(5));

  // Reachable replicas converged; the disconnected node is stale and its
  // deferred updates accumulate at the master.
  EXPECT_EQ(*CopyValue(&deploy_, 2, "po-header", "PO1"), "shipped");
  EXPECT_EQ(*CopyValue(&deploy_, 3, "po-header", "PO1"), "shipped");
  EXPECT_EQ(*CopyValue(&deploy_, 4, "po-header", "PO1"), "open");
  EXPECT_EQ(SuspenseDepth(&deploy_, 1), 2u);  // both updates for node 4

  // "When the network is re-connected and all accumulated updates are
  // applied, global file copies converge to a consistent state."
  deploy_.cluster().ReconnectNode(4);
  sim_.RunFor(Seconds(10));
  EXPECT_TRUE(Converged(&deploy_, kNodes, "po-header", "PO1"));
  EXPECT_EQ(*CopyValue(&deploy_, 4, "po-header", "PO1"), "shipped");
  EXPECT_EQ(SuspenseDepth(&deploy_, 1), 0u);
}

TEST_F(ManufacturingTest, DeferredUpdatesApplyInSuspenseFileOrder) {
  SeedGlobalRecord(&deploy_, kNodes, "item-master", "Y1", "s0", /*master=*/1);
  deploy_.cluster().IsolateNode(4);
  sim_.RunFor(Millis(100));
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(GlobalUpdate(1, "item-master", "Y1", "s" + std::to_string(i)).ok());
  }
  sim_.RunFor(Seconds(3));
  EXPECT_EQ(SuspenseDepth(&deploy_, 1), 5u);
  deploy_.cluster().ReconnectNode(4);
  sim_.RunFor(Seconds(15));
  // In-order application means the final state is the LAST update.
  EXPECT_EQ(*CopyValue(&deploy_, 4, "item-master", "Y1"), "s5");
  EXPECT_EQ(SuspenseDepth(&deploy_, 1), 0u);
}

TEST_F(ManufacturingTest, UpdateFailsWhenMasterUnavailable) {
  SeedGlobalRecord(&deploy_, kNodes, "item-master", "Z9", "v1", /*master=*/1);
  deploy_.cluster().IsolateNode(1);  // the master vanishes
  sim_.RunFor(Millis(100));
  Status s = GlobalUpdate(2, "item-master", "Z9", "v2");
  EXPECT_FALSE(s.ok());
  // No replica changed.
  EXPECT_EQ(*CopyValue(&deploy_, 2, "item-master", "Z9"), "v1");
  EXPECT_EQ(*CopyValue(&deploy_, 3, "item-master", "Z9"), "v1");
}

TEST_F(ManufacturingTest, NodeAutonomyLocalWorkContinuesDuringPartition) {
  SeedLocalRecord(&deploy_, 2, "stock", "item1", "10");
  deploy_.cluster().IsolateNode(4);
  sim_.RunFor(Millis(100));
  // Node 2 keeps processing local transactions despite the partition.
  EXPECT_TRUE(LocalUpdate(2, "stock", "item1", "25").ok());
  auto* vol = deploy_.GetNode(2)->storage().volumes.at(MfgVolume(2)).get();
  auto r = vol->ReadRecord(CopyName("stock", 2), Slice("item1"));
  ASSERT_TRUE(r.status.ok());
  auto rec = storage::Record::Decode(Slice(r.value));
  EXPECT_EQ(rec->Get("val"), "25");
}

TEST_F(ManufacturingTest, MixedTcpWorkloadConvergesEverywhere) {
  SeedGlobalRecord(&deploy_, kNodes, "item-master", "M1", "v0", /*master=*/2);
  for (net::NodeId n : kNodes) {
    for (int i = 0; i < 8; ++i) {
      SeedLocalRecord(&deploy_, n, "stock", "item" + std::to_string(i), "0");
    }
  }
  std::vector<std::unique_ptr<app::ScreenProgram>> programs;
  std::vector<app::Tcp*> tcps;
  for (net::NodeId n : kNodes) {
    auto local = std::make_unique<app::ScreenProgram>(MakeLocalStockProgram(n, 8));
    auto global = std::make_unique<app::ScreenProgram>(
        MakeGlobalUpdateProgram(n, "item-master", "M1"));
    app::TcpConfig cfg;
    cfg.programs = {{"local", local.get()}, {"global", global.get()}};
    cfg.restart_limit = 50;
    auto pair = os::SpawnPair<app::Tcp>(deploy_.GetNode(n)->node(),
                                        "$TCP" + std::to_string(n), 2, 3, cfg);
    programs.push_back(std::move(local));
    programs.push_back(std::move(global));
    tcps.push_back(pair.primary);
    sim_.RunFor(Millis(1));
    for (int t = 0; t < 3; ++t) {
      ASSERT_TRUE(pair.primary->AttachTerminal(
          "t" + std::to_string(n) + "-" + std::to_string(t), "local", 10));
    }
    ASSERT_TRUE(pair.primary->AttachTerminal("g" + std::to_string(n), "global", 2));
  }
  sim_.RunFor(Seconds(60));
  uint64_t completed = 0, failed = 0;
  for (auto* tcp : tcps) {
    completed += tcp->programs_completed();
    failed += tcp->programs_failed();
  }
  EXPECT_EQ(completed, kNodes.size() * (3 * 10 + 2));
  EXPECT_EQ(failed, 0u);
  sim_.RunFor(Seconds(20));
  EXPECT_TRUE(Converged(&deploy_, kNodes, "item-master", "M1"));
  for (net::NodeId n : kNodes) {
    EXPECT_EQ(SuspenseDepth(&deploy_, n), 0u) << "node " << n;
  }
}

}  // namespace
}  // namespace encompass::apps::manufacturing
