// BackoutProcess: the process-pair that performs transaction backout "using
// the transaction's before-images recorded in the audit trails". On request
// from the TMP it fetches the transaction's audit records from every local
// AUDITPROCESS and applies compensating updates (newest first) through the
// owning DISCPROCESSes. All steps are idempotent, so a takeover or retry
// can safely replay the backout.

#ifndef ENCOMPASS_TMF_BACKOUT_PROCESS_H_
#define ENCOMPASS_TMF_BACKOUT_PROCESS_H_

#include <string>
#include <vector>

#include "os/process_pair.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

/// Configuration of one node's BACKOUTPROCESS.
struct BackoutConfig {
  std::vector<std::string> audit_processes;  ///< local AUDITPROCESS names
  SimDuration fetch_timeout = Seconds(2);
  SimDuration undo_timeout = Seconds(2);
};

/// The BACKOUTPROCESS pair.
class BackoutProcess : public os::PairedProcess {
 public:
  explicit BackoutProcess(BackoutConfig config) : config_(std::move(config)) {}

  std::string DebugName() const override { return pair_name() + "/backout"; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;

 private:
  void RunBackout(const net::Message& request, const Transid& transid);

  BackoutConfig config_;
  sim::MetricId m_requests_, m_undos_;
};

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_BACKOUT_PROCESS_H_
