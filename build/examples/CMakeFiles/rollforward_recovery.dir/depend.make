# Empty dependencies file for rollforward_recovery.
# This may be replaced when dependencies are built.
