// Partitioning: ENCOMPASS files may be partitioned by primary-key range
// across multiple disc volumes, possibly on multiple network nodes. The
// PartitionMap is the catalog-side descriptor the file-system layer uses to
// route an operation to the DISCPROCESS owning the key.

#ifndef ENCOMPASS_STORAGE_PARTITION_H_
#define ENCOMPASS_STORAGE_PARTITION_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/file.h"

namespace encompass::storage {

/// One partition of a file: the key range below `upper_bound` (exclusive)
/// not covered by earlier partitions, hosted on `volume_process` at `node`.
struct PartitionEntry {
  Bytes upper_bound;          ///< exclusive bound; empty = +infinity (last)
  uint16_t node = 0;          ///< network node hosting the partition
  std::string volume_process; ///< DISCPROCESS name, e.g. "$DATA1"
};

/// Ordered key-range partitioning of one file.
class PartitionMap {
 public:
  PartitionMap() = default;
  /// Single-partition map (the common, unpartitioned case).
  PartitionMap(uint16_t node, std::string volume_process) {
    entries_.push_back(PartitionEntry{{}, node, std::move(volume_process)});
  }

  /// Appends a partition. Bounds must be added in ascending order; the last
  /// partition must have an empty (infinite) bound before use.
  void AddPartition(Bytes upper_bound, uint16_t node, std::string volume_process) {
    entries_.push_back(
        PartitionEntry{std::move(upper_bound), node, std::move(volume_process)});
  }

  /// Checks structural validity: non-empty, ascending bounds, infinite tail.
  Status Validate() const;

  /// Partition owning `key`. Precondition: Validate().ok().
  const PartitionEntry& Locate(const Slice& key) const;

  /// Index of the partition owning `key`.
  size_t LocateIndex(const Slice& key) const;

  const std::vector<PartitionEntry>& entries() const { return entries_; }
  size_t partition_count() const { return entries_.size(); }

 private:
  std::vector<PartitionEntry> entries_;
};

/// Data-dictionary entry describing one logical file.
struct FileDefinition {
  std::string name;
  FileOrganization organization = FileOrganization::kKeySequenced;
  bool audited = true;
  FileSchema schema;
  PartitionMap partitions;
};

/// The data dictionary: logical file name -> definition. In a real system
/// this lives in the data base; here it is distributed read-only config.
class Catalog {
 public:
  Status DefineFile(FileDefinition def);
  const FileDefinition* Find(const std::string& name) const;
  std::vector<std::string> FileNames() const;

 private:
  std::map<std::string, FileDefinition> files_;
};

}  // namespace encompass::storage

#endif  // ENCOMPASS_STORAGE_PARTITION_H_
