# Empty compiler generated dependencies file for manufacturing_test.
# This may be replaced when dependencies are built.
