// FaultInjector: a scripted schedule of named fault actions applied at
// simulated times, with a journal of what fired. Concrete fault effects
// (failing a CPU, cutting a link, dropping a disc path) are provided by the
// OS and network layers as callbacks; this class owns *when* and *what was
// logged*, keeping experiments declarative and reproducible.

#ifndef ENCOMPASS_SIM_FAULT_INJECTOR_H_
#define ENCOMPASS_SIM_FAULT_INJECTOR_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace encompass::sim {

/// A record of one injected fault.
struct FaultEvent {
  SimTime when;
  std::string description;
};

/// Declarative fault schedule bound to a Simulation.
class FaultInjector {
 public:
  explicit FaultInjector(Simulation* sim) : sim_(sim) {}

  /// Schedules `action` at absolute simulated time `when`, journaling it
  /// under `description` when it fires. Safe to call from inside a firing
  /// action: the injector keeps separate scheduled/fired counters, so
  /// re-entrant scheduling never skews pending().
  void InjectAt(SimTime when, std::string description, std::function<void()> action);

  /// Schedules `action` `delay` microseconds from now.
  void InjectAfter(SimDuration delay, std::string description,
                   std::function<void()> action);

  /// Appends an annotation to the journal at the current simulated time
  /// without scheduling anything. Campaign drivers use this to record
  /// decisions (suppressed faults, recovery completions) next to the faults
  /// themselves. Notes never count toward scheduled()/fired()/pending().
  void Note(std::string description);

  /// Journal of faults that have actually fired (plus Note() annotations),
  /// in canonical firing order. Entries are sorted by the total-order key of
  /// the event that wrote them — not by insertion order, which on the
  /// parallel engine depends on which worker thread got there first. Read it
  /// only while the simulation is quiescent.
  const std::vector<FaultEvent>& journal() const;

  /// Faults ever scheduled / actually fired. fired() is tracked explicitly
  /// rather than derived from journal().size(): the journal also carries
  /// Note() entries, and an action may InjectAt() re-entrantly while its own
  /// journal entry is being written.
  size_t scheduled() const { return scheduled_; }
  size_t fired() const { return fired_; }

  /// Number of scheduled faults that have not yet fired.
  size_t pending() const { return scheduled_ - fired_; }

 private:
  struct Entry {
    EventKey key;      // key of the event that journaled this
    uint64_t ordinal;  // insertion index: orders entries of one event
    FaultEvent e;
  };
  void Append(std::string description);

  Simulation* sim_;
  // Notes (and re-entrant injections) can come from recovery callbacks
  // executing on node loops, concurrently in parallel mode.
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  mutable std::vector<FaultEvent> journal_;  // sorted view, built on read
  size_t scheduled_ = 0;
  size_t fired_ = 0;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_FAULT_INJECTOR_H_
