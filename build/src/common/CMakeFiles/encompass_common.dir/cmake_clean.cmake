file(REMOVE_RECURSE
  "CMakeFiles/encompass_common.dir/coding.cc.o"
  "CMakeFiles/encompass_common.dir/coding.cc.o.d"
  "CMakeFiles/encompass_common.dir/crc32.cc.o"
  "CMakeFiles/encompass_common.dir/crc32.cc.o.d"
  "CMakeFiles/encompass_common.dir/logging.cc.o"
  "CMakeFiles/encompass_common.dir/logging.cc.o.d"
  "CMakeFiles/encompass_common.dir/random.cc.o"
  "CMakeFiles/encompass_common.dir/random.cc.o.d"
  "CMakeFiles/encompass_common.dir/status.cc.o"
  "CMakeFiles/encompass_common.dir/status.cc.o.d"
  "libencompass_common.a"
  "libencompass_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
