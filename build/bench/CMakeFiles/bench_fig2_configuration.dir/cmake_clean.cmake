file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_configuration.dir/bench_fig2_configuration.cc.o"
  "CMakeFiles/bench_fig2_configuration.dir/bench_fig2_configuration.cc.o.d"
  "bench_fig2_configuration"
  "bench_fig2_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
