// Property tests for the Volume durability boundary: random workloads of
// mutations, flushes, and simulated total-node failures (DropVolatile) are
// checked against a reference model that tracks both the live and the
// durable state. Parameterized over file organizations and seeds.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/random.h"
#include "storage/volume.h"

namespace encompass::storage {
namespace {

struct Model {
  std::map<std::string, std::string> live;
  std::map<std::string, std::string> durable;
  void Flush() { durable = live; }
  void Crash() { live = durable; }
};

using PropertyParam = std::tuple<FileOrganization, uint64_t>;

class VolumePropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(VolumePropertyTest, MatchesDurabilityModel) {
  const FileOrganization org = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Volume vol("$V");
  ASSERT_TRUE(vol.CreateFile("f", org).ok());
  Model model;
  Random rng(seed);

  auto key_of = [&](uint64_t i) {
    // Relative/entry-sequenced files address by record number.
    if (org == FileOrganization::kKeySequenced) {
      return ToString(Bytes(EncodeRecnum(i)));
    }
    return ToString(Bytes(EncodeRecnum(i)));
  };

  for (int step = 0; step < 3000; ++step) {
    uint64_t i = rng.Uniform(64);
    std::string key = key_of(i);
    switch (rng.Uniform(6)) {
      case 0: {  // insert
        if (org == FileOrganization::kEntrySequenced && model.live.count(key)) {
          break;  // explicit-key re-insert of existing entry is rejected
        }
        std::string value = "v" + std::to_string(rng.Next() % 1000);
        auto r = vol.Mutate("f", MutationOp::kInsert,
                            Slice(EncodeRecnum(i)), Slice(value));
        if (model.live.count(key)) {
          EXPECT_TRUE(r.status.IsAlreadyExists());
        } else {
          ASSERT_TRUE(r.status.ok()) << r.status.ToString();
          model.live[key] = value;
        }
        break;
      }
      case 1: {  // update
        std::string value = "u" + std::to_string(rng.Next() % 1000);
        auto r = vol.Mutate("f", MutationOp::kUpdate, Slice(EncodeRecnum(i)),
                            Slice(value));
        if (model.live.count(key)) {
          ASSERT_TRUE(r.status.ok());
          EXPECT_EQ(ToString(r.before), model.live[key]);
          model.live[key] = value;
        } else {
          EXPECT_TRUE(r.status.IsNotFound());
        }
        break;
      }
      case 2: {  // delete (entry-sequenced files reject logical deletes)
        auto r = vol.Mutate("f", MutationOp::kDelete, Slice(EncodeRecnum(i)),
                            Slice());
        if (org == FileOrganization::kEntrySequenced) {
          EXPECT_TRUE(r.status.IsNotSupported() || r.status.IsNotFound());
        } else if (model.live.count(key)) {
          ASSERT_TRUE(r.status.ok());
          model.live.erase(key);
        } else {
          EXPECT_TRUE(r.status.IsNotFound());
        }
        break;
      }
      case 3: {  // read
        auto r = vol.ReadRecord("f", Slice(EncodeRecnum(i)));
        if (model.live.count(key)) {
          ASSERT_TRUE(r.status.ok());
          EXPECT_EQ(ToString(r.value), model.live[key]);
        } else {
          EXPECT_TRUE(r.status.IsNotFound());
        }
        break;
      }
      case 4: {  // flush (rare)
        if (rng.Uniform(8) == 0) {
          vol.Flush();
          model.Flush();
          EXPECT_EQ(vol.VolatileCount(), 0u);
        }
        break;
      }
      case 5: {  // total node failure (rarer)
        if (rng.Uniform(16) == 0) {
          vol.DropVolatile();
          model.Crash();
        }
        break;
      }
    }
  }

  // Full agreement with the live model at the end.
  StructuredFile* f = vol.Find("f");
  size_t seen = 0;
  f->ForEach([&](const Slice& key, const Slice& value) {
    auto it = model.live.find(key.ToString());
    ASSERT_NE(it, model.live.end());
    EXPECT_EQ(value.ToString(), it->second);
    ++seen;
  });
  EXPECT_EQ(seen, model.live.size());

  // And after one final crash, full agreement with the durable model.
  vol.DropVolatile();
  model.Crash();
  seen = 0;
  f->ForEach([&](const Slice& key, const Slice& value) {
    auto it = model.live.find(key.ToString());
    ASSERT_NE(it, model.live.end());
    EXPECT_EQ(value.ToString(), it->second);
    ++seen;
  });
  EXPECT_EQ(seen, model.live.size());
}

INSTANTIATE_TEST_SUITE_P(
    OrgsAndSeeds, VolumePropertyTest,
    ::testing::Combine(::testing::Values(FileOrganization::kKeySequenced,
                                         FileOrganization::kRelative,
                                         FileOrganization::kEntrySequenced),
                       ::testing::Values(101, 202, 303)));

// Archive/restore agrees with the live state at arbitrary points.
TEST(VolumeArchiveProperty, RestoreEqualsSnapshot) {
  Random rng(999);
  for (int round = 0; round < 5; ++round) {
    Volume vol("$V");
    vol.CreateFile("f", FileOrganization::kKeySequenced);
    std::map<std::string, std::string> model;
    int ops = 50 + static_cast<int>(rng.Uniform(400));
    for (int i = 0; i < ops; ++i) {
      std::string key = "k" + std::to_string(rng.Uniform(100));
      std::string value = "v" + std::to_string(rng.Next() % 1000);
      auto r = vol.Mutate("f", MutationOp::kInsert, Slice(key), Slice(value));
      if (r.status.ok()) model[key] = value;
    }
    vol.Flush();
    Bytes image = vol.Archive();
    Volume restored("$V");
    ASSERT_TRUE(restored.RestoreFromArchive(Slice(image)).ok());
    EXPECT_EQ(restored.Find("f")->record_count(), model.size());
    for (const auto& [key, value] : model) {
      auto r = restored.ReadRecord("f", Slice(key));
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(ToString(r.value), value);
    }
  }
}

}  // namespace
}  // namespace encompass::storage
