#include "sim/trace.h"

#include <algorithm>
#include <sstream>

namespace encompass::sim {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMsgSend:
      return "msg.send";
    case TraceEventKind::kMsgDeliver:
      return "msg.deliver";
    case TraceEventKind::kTxnState:
      return "txn.state";
    case TraceEventKind::kPhase1Start:
      return "phase1.start";
    case TraceEventKind::kPhase1Done:
      return "phase1.done";
    case TraceEventKind::kCommitRecord:
      return "commit.record";
    case TraceEventKind::kPhase2Queued:
      return "phase2.queued";
    case TraceEventKind::kPhase2Recv:
      return "phase2.recv";
    case TraceEventKind::kAbortStart:
      return "abort.start";
    case TraceEventKind::kAbortDone:
      return "abort.done";
    case TraceEventKind::kLockAcquire:
      return "lock.acquire";
    case TraceEventKind::kLockRelease:
      return "lock.release";
    case TraceEventKind::kAuditForce:
      return "audit.force";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  std::ostringstream out;
  out << "t=" << time << " node=" << node << " span=" << span;
  if (parent != 0) out << "<-" << parent;
  out << " " << TraceEventKindName(kind) << " a=" << a << " b=" << b;
  return out.str();
}

TraceLog::TraceLog(size_t capacity) : capacity_(capacity) { EnsureShards(1); }

void TraceLog::Record(const TraceEvent& e) {
  const internal::ExecContext* ec = internal::Exec();
  Shard* s;
  EventKey key;
  if (ec != nullptr && ec->trace == this) {
    s = shards_[ec->shard].get();
    key = ec->key;
  } else {
    // Outside event execution: shard 0 with a time-only key, which sorts
    // before any event's records at the same instant.
    s = shards_[0].get();
    key = EventKey{e.time, 0, 0};
  }
  Rec rec{key, s->next_ordinal++, e};
  if (s->ring.size() < capacity_) {
    s->ring.push_back(std::move(rec));
  } else {
    s->ring[s->head] = std::move(rec);
    s->head = (s->head + 1) % capacity_;
    s->dropped++;
  }
}

size_t TraceLog::size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->ring.size();
  return n;
}

size_t TraceLog::dropped() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->dropped;
  return n;
}

void TraceLog::Clear() {
  for (auto& s : shards_) {
    s->ring.clear();
    s->head = 0;
    s->dropped = 0;
  }
  // span_counters_ deliberately keep counting: span ids stay unique per run.
}

void TraceLog::EnsureShards(size_t n) {
  while (shards_.size() < n) shards_.push_back(std::make_unique<Shard>());
}

std::vector<TraceEvent> TraceLog::Events(uint64_t transid) const {
  std::vector<const Rec*> recs;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    const size_t n = s.ring.size();
    // A full ring's oldest element sits at head (the next overwrite slot);
    // a partially filled ring starts at 0.
    const size_t start = (n == capacity_) ? s.head : 0;
    for (size_t i = 0; i < n; ++i) {
      const Rec& r = s.ring[(start + i) % n];
      if (r.e.transid == transid) recs.push_back(&r);
    }
  }
  // Canonical order: event key, then record order within the event. Keys
  // are globally unique per event, so the ordinal only breaks ties among
  // records of one event (or among keyless shard-0 records).
  std::sort(recs.begin(), recs.end(), [](const Rec* a, const Rec* b) {
    if (a->key < b->key) return true;
    if (b->key < a->key) return false;
    return a->ordinal < b->ordinal;
  });
  std::vector<TraceEvent> out;
  out.reserve(recs.size());
  for (const Rec* r : recs) out.push_back(r->e);
  return out;
}

std::vector<TraceEvent> TraceLog::AllEvents() const {
  std::vector<const Rec*> recs;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    const size_t n = s.ring.size();
    const size_t start = (n == capacity_) ? s.head : 0;
    for (size_t i = 0; i < n; ++i) recs.push_back(&s.ring[(start + i) % n]);
  }
  std::sort(recs.begin(), recs.end(), [](const Rec* a, const Rec* b) {
    if (a->key < b->key) return true;
    if (b->key < a->key) return false;
    return a->ordinal < b->ordinal;
  });
  std::vector<TraceEvent> out;
  out.reserve(recs.size());
  for (const Rec* r : recs) out.push_back(r->e);
  return out;
}

std::string TraceLog::Dump(uint64_t transid) const {
  std::ostringstream out;
  out << "trace transid=" << transid;
  const size_t d = dropped();
  if (d > 0) out << " (ring dropped " << d << " oldest events)";
  out << "\n";
  for (const TraceEvent& e : Events(transid)) {
    out << "  " << e.ToString() << "\n";
  }
  return out.str();
}

}  // namespace encompass::sim
