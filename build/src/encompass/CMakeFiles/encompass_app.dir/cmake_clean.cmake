file(REMOVE_RECURSE
  "CMakeFiles/encompass_app.dir/deployment.cc.o"
  "CMakeFiles/encompass_app.dir/deployment.cc.o.d"
  "CMakeFiles/encompass_app.dir/query.cc.o"
  "CMakeFiles/encompass_app.dir/query.cc.o.d"
  "CMakeFiles/encompass_app.dir/server_class.cc.o"
  "CMakeFiles/encompass_app.dir/server_class.cc.o.d"
  "CMakeFiles/encompass_app.dir/tcp.cc.o"
  "CMakeFiles/encompass_app.dir/tcp.cc.o.d"
  "libencompass_app.a"
  "libencompass_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
