// TMF wire protocol: client-to-TMP verbs, TMP-to-TMP distributed commit
// messages (critical-response and safe-delivery classes), and the backout
// request.

#ifndef ENCOMPASS_TMF_TMF_PROTOCOL_H_
#define ENCOMPASS_TMF_TMF_PROTOCOL_H_

#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/transid.h"
#include "net/message.h"

namespace encompass::tmf {

/// TMF message tags.
enum TmfTag : uint32_t {
  // Client verbs (to the local TMP).
  kTmfBegin = net::kTagTmf + 1,   ///< -> reply carries the new packed transid
  kTmfEnd = net::kTagTmf + 2,     ///< commit; reply when ended (or Aborted)
  kTmfAbort = net::kTagTmf + 3,   ///< voluntary abort; reply when backed out
  kTmfEnsureRemote = net::kTagTmf + 4,  ///< register a remote participant

  // TMP-to-TMP: critical-response class (destination must be accessible and
  // must reply affirmatively for the state change to proceed).
  kTmfRemoteBegin = net::kTagTmf + 5,  ///< broadcast transid active at dest
  kTmfPhase1 = net::kTagTmf + 6,       ///< force audit; prepare to commit

  // TMP-to-TMP: safe-delivery class (delivery guaranteed eventually; the
  /// reply only acknowledges receipt).
  kTmfPhase2 = net::kTagTmf + 7,       ///< commit decided: release locks
  kTmfAbortTxn = net::kTagTmf + 8,     ///< abort decided: back out

  // Utilities (the TMF operator-utility surface the paper's manual
  // override procedure uses).
  kTmfStatus = net::kTagTmf + 9,            ///< disposition query
  kTmfForceDisposition = net::kTagTmf + 10, ///< manual in-doubt override
  kBackoutTxn = net::kTagTmf + 11,          ///< TMP -> BACKOUTPROCESS
  kTmfListTxns = net::kTagTmf + 12,         ///< enumerate tracked txns

  // TMP-to-TMP: ROLLFORWARD / in-doubt negotiation. Sent to the transaction's
  // home TMP; the reply carries a Disposition (Fixed8). With the `recovering`
  // flag set the sender is a reloading node whose volatile phase-1 state is
  // lost, and the home resolves a still-active transaction by aborting it
  // (the recovering participant can no longer honor its phase-1 promise).
  // Without the flag it is a live in-doubt refresh and the home only reports
  // what its MAT already proves.
  kTmfResolveTxn = net::kTagTmf + 13,

  // Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"): sent
  // to the CommitAcceptor pairs that replicate the commit/abort decision of
  // a distributed transaction. The commit point under
  // `TmpConfig::commit_protocol = kPaxos` is "a majority of acceptors
  // durably accepted kCommitted", not the home MAT force.
  kTmfPaxosPrepare = net::kTagTmf + 14,  ///< phase 1a: promise a ballot
  kTmfPaxosAccept = net::kTagTmf + 15,   ///< phase 2a: accept a value

  // Paxos Commit fast path (the paper's F+1-message topology): every
  // participant runs its own consensus instance, keyed (transid, voter
  // node), and sends its phase-2a prepared-vote directly to the acceptors —
  // one-way, no reply — so the commit point is one WAN delay from the
  // participants' prepares instead of two. Acceptors ack durably-forced
  // votes straight to the home TMP (bundled per transaction), and the home
  // reclaims decided instances once phase 2 landed everywhere.
  kTmfPaxosVote = net::kTagTmf + 16,     ///< one-way voter -> acceptor
  kTmfPaxosVoteAck = net::kTagTmf + 17,  ///< one-way acceptor -> home TMP
  kTmfPaxosReclaim = net::kTagTmf + 18,  ///< one-way home -> acceptor (GC)
};

/// One row of a kTmfListTxns reply.
struct TxnListEntry {
  Transid transid;
  uint8_t state = 0;       ///< TxnState
  bool is_home = false;
  net::NodeId parent = 0;
};

/// Encodes a kTmfListTxns reply payload.
inline Bytes EncodeTxnList(const std::vector<TxnListEntry>& entries) {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    PutFixed64(&out, e.transid.Pack());
    PutFixed8(&out, e.state);
    PutFixed8(&out, e.is_home ? 1 : 0);
    PutFixed16(&out, e.parent);
  }
  return out;
}

/// Decodes a kTmfListTxns reply payload.
inline Result<std::vector<TxnListEntry>> DecodeTxnList(const Slice& payload) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return DecodeError("txn list count");
  // Each entry occupies 12 bytes: a count larger than the remaining payload
  // is malformed (and must not drive a giant allocation).
  if (static_cast<uint64_t>(n) * 12 > in.size()) {
    return DecodeError("txn list count exceeds payload");
  }
  std::vector<TxnListEntry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TxnListEntry e;
    uint64_t packed;
    uint8_t home;
    if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &e.state) ||
        !GetFixed8(&in, &home) || !GetFixed16(&in, &e.parent)) {
      return DecodeError("txn list entry");
    }
    e.transid = Transid::Unpack(packed);
    e.is_home = home != 0;
    entries.push_back(e);
  }
  return entries;
}

/// Dispositions reported by kTmfStatus.
enum class Disposition : uint8_t {
  kAborted = 0,
  kCommitted = 1,
  kUnknown = 2,
};

inline Bytes EncodeTransidPayload(const Transid& t) {
  Bytes out;
  PutFixed64(&out, t.Pack());
  return out;
}

inline Result<Transid> DecodeTransidPayload(const Slice& payload) {
  Slice in = payload;
  uint64_t packed;
  if (!GetFixed64(&in, &packed)) return DecodeError("transid payload");
  return Transid::Unpack(packed);
}

inline Bytes EncodeEnsureRemote(const Transid& t, net::NodeId dest) {
  Bytes out;
  PutFixed64(&out, t.Pack());
  PutFixed16(&out, dest);
  return out;
}

inline bool DecodeEnsureRemote(const Slice& payload, Transid* t,
                               net::NodeId* dest) {
  Slice in = payload;
  uint64_t packed;
  uint16_t node;
  if (!GetFixed64(&in, &packed) || !GetFixed16(&in, &node)) return false;
  *t = Transid::Unpack(packed);
  *dest = node;
  return true;
}

inline Bytes EncodeResolveTxn(const Transid& t, bool recovering) {
  Bytes out;
  PutFixed64(&out, t.Pack());
  PutFixed8(&out, recovering ? 1 : 0);
  return out;
}

inline bool DecodeResolveTxn(const Slice& payload, Transid* t,
                             bool* recovering) {
  Slice in = payload;
  uint64_t packed;
  uint8_t flag;
  if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &flag)) return false;
  *t = Transid::Unpack(packed);
  *recovering = flag != 0;
  return true;
}

/// Reply payload of kTmfResolveTxn (and kTmfStatus): one Disposition byte.
inline Bytes EncodeDisposition(Disposition d) {
  Bytes out;
  PutFixed8(&out, static_cast<uint8_t>(d));
  return out;
}

inline bool DecodeDisposition(const Slice& payload, Disposition* d) {
  Slice in = payload;
  uint8_t disp;
  if (!GetFixed8(&in, &disp) || disp > 2) return false;
  *d = static_cast<Disposition>(disp);
  return true;
}

inline Bytes EncodeForceDisposition(const Transid& t, Disposition d) {
  Bytes out;
  PutFixed64(&out, t.Pack());
  PutFixed8(&out, static_cast<uint8_t>(d));
  return out;
}

inline bool DecodeForceDisposition(const Slice& payload, Transid* t,
                                   Disposition* d) {
  Slice in = payload;
  uint64_t packed;
  uint8_t disp;
  if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &disp)) return false;
  *t = Transid::Unpack(packed);
  *d = static_cast<Disposition>(disp);
  return true;
}

// --- Paxos Commit wire formats -------------------------------------------

/// Ballot numbers order proposers: `(attempt << 16) | proposer_node_id`.
/// The home's initial proposal is attempt 0 (its promise rides the phase-1
/// fan-out, Gray & Lamport's "free" prepare phase); every recovery proposer
/// starts at attempt >= 1, so a usurping ballot always outranks the home's
/// initial one, and the node id in the low bits keeps concurrent proposers'
/// ballots distinct.
inline uint32_t MakePaxosBallot(uint32_t attempt, net::NodeId proposer) {
  return (attempt << 16) | static_cast<uint32_t>(proposer);
}

/// Phase-1 payload under paxos: the plain transid payload plus the home's
/// initial ballot. Plain 2PC keeps the 8-byte transid payload, and
/// DecodeTransidPayload ignores trailing bytes, so participants of either
/// protocol decode both forms.
inline Bytes EncodePhase1Paxos(const Transid& t, uint32_t ballot) {
  Bytes out = EncodeTransidPayload(t);
  PutFixed32(&out, ballot);
  return out;
}

/// Extracts the piggybacked ballot from a phase-1 payload; false when the
/// payload is the plain 2PC form.
inline bool DecodePhase1Ballot(const Slice& payload, uint32_t* ballot) {
  Slice in = payload;
  uint64_t packed;
  return GetFixed64(&in, &packed) && GetFixed32(&in, ballot);
}

/// Under the fast path every participant runs its own consensus instance,
/// keyed by (transid, voter node). Voter 0 names the legacy single
/// decision-replication instance, and a voter-0 encoding appends no trailing
/// bytes, so pre-fast-path wire traffic is byte-identical.
inline Bytes EncodePaxosPrepare(const Transid& t, uint32_t ballot,
                                uint16_t voter = 0) {
  Bytes out;
  PutFixed64(&out, t.Pack());
  PutFixed32(&out, ballot);
  if (voter != 0) PutFixed16(&out, voter);
  return out;
}

inline bool DecodePaxosPrepare(const Slice& payload, Transid* t,
                               uint32_t* ballot, uint16_t* voter = nullptr) {
  Slice in = payload;
  uint64_t packed;
  if (!GetFixed64(&in, &packed) || !GetFixed32(&in, ballot)) return false;
  *t = Transid::Unpack(packed);
  if (voter != nullptr) {
    *voter = 0;
    if (in.size() >= 2) GetFixed16(&in, voter);
  }
  return true;
}

/// Phase 1b: the acceptor's promise state after processing a prepare.
struct PaxosPrepareReply {
  bool granted = false;          ///< ballot > previous promise
  uint32_t promised = 0;         ///< the acceptor's promise, post-request
  uint32_t accepted_ballot = 0;  ///< ballot of the accepted value (0 = none)
  bool has_value = false;
  Disposition value = Disposition::kUnknown;
  /// Fast-path extension: participant set carried by the home's accepted
  /// vote (resolvers learn which voter instances to settle from it).
  std::vector<net::NodeId> participants;
  /// Fast-path extension: the instance was garbage-collected after the
  /// transaction's final disposition landed everywhere; `sealed_value` is
  /// that final transaction disposition (not a per-voter value).
  bool sealed = false;
  Disposition sealed_value = Disposition::kUnknown;
};

inline Bytes EncodePaxosPrepareReply(const PaxosPrepareReply& r) {
  Bytes out;
  PutFixed8(&out, r.granted ? 1 : 0);
  PutFixed32(&out, r.promised);
  PutFixed32(&out, r.accepted_ballot);
  PutFixed8(&out, r.has_value ? 1 : 0);
  PutFixed8(&out, static_cast<uint8_t>(r.value));
  // The extension block is appended only when it carries information, so a
  // legacy (voter-0, never-sealed) reply keeps the pre-fast-path bytes.
  if (r.sealed || !r.participants.empty()) {
    PutFixed8(&out, r.sealed ? 1 : 0);
    PutFixed8(&out, static_cast<uint8_t>(r.sealed_value));
    PutFixed8(&out, static_cast<uint8_t>(r.participants.size()));
    for (net::NodeId p : r.participants) PutFixed16(&out, p);
  }
  return out;
}

inline bool DecodePaxosPrepareReply(const Slice& payload,
                                    PaxosPrepareReply* r) {
  Slice in = payload;
  uint8_t granted, has_value, value;
  if (!GetFixed8(&in, &granted) || !GetFixed32(&in, &r->promised) ||
      !GetFixed32(&in, &r->accepted_ballot) || !GetFixed8(&in, &has_value) ||
      !GetFixed8(&in, &value) || value > 2) {
    return false;
  }
  r->granted = granted != 0;
  r->has_value = has_value != 0;
  r->value = static_cast<Disposition>(value);
  r->participants.clear();
  r->sealed = false;
  r->sealed_value = Disposition::kUnknown;
  if (!in.empty()) {
    uint8_t sealed, sealed_value, npart;
    if (!GetFixed8(&in, &sealed) || !GetFixed8(&in, &sealed_value) ||
        !GetFixed8(&in, &npart)) {
      return false;
    }
    r->sealed = sealed != 0;
    if (r->sealed) {
      if (sealed_value > 1) return false;  // a seal is always a decision
      r->sealed_value = static_cast<Disposition>(sealed_value);
    }
    for (uint8_t i = 0; i < npart; ++i) {
      uint16_t p;
      if (!GetFixed16(&in, &p)) return false;
      r->participants.push_back(p);
    }
  }
  // An accepted value is always a decision; kUnknown never travels as one.
  return !r->has_value || r->value != Disposition::kUnknown;
}

/// Also the kTmfPaxosVote payload: a fast-path vote is a phase-2a accept
/// sent one-way, with the voter's instance key appended, and — on the home's
/// vote only — the participant set the resolvers will need.
inline Bytes EncodePaxosAccept(const Transid& t, uint32_t ballot,
                               Disposition value, uint16_t voter = 0,
                               const std::vector<net::NodeId>& participants =
                                   {}) {
  Bytes out;
  PutFixed64(&out, t.Pack());
  PutFixed32(&out, ballot);
  PutFixed8(&out, static_cast<uint8_t>(value));
  if (voter != 0) {
    PutFixed16(&out, voter);
    PutFixed8(&out, static_cast<uint8_t>(participants.size()));
    for (net::NodeId p : participants) PutFixed16(&out, p);
  }
  return out;
}

inline bool DecodePaxosAccept(const Slice& payload, Transid* t,
                              uint32_t* ballot, Disposition* value,
                              uint16_t* voter = nullptr,
                              std::vector<net::NodeId>* participants =
                                  nullptr) {
  Slice in = payload;
  uint64_t packed;
  uint8_t v;
  if (!GetFixed64(&in, &packed) || !GetFixed32(&in, ballot) ||
      !GetFixed8(&in, &v) || v > 1) {
    return false;
  }
  *t = Transid::Unpack(packed);
  *value = static_cast<Disposition>(v);
  if (voter != nullptr) *voter = 0;
  if (participants != nullptr) participants->clear();
  if (voter != nullptr && in.size() >= 3) {
    uint8_t npart;
    if (!GetFixed16(&in, voter) || !GetFixed8(&in, &npart)) return false;
    for (uint8_t i = 0; i < npart; ++i) {
      uint16_t p;
      if (!GetFixed16(&in, &p)) return false;
      if (participants != nullptr) participants->push_back(p);
    }
  }
  return true;
}

/// Phase 2b: accepted iff ballot >= the acceptor's promise.
struct PaxosAcceptReply {
  bool accepted = false;
  uint32_t promised = 0;
  /// Fast-path extension: see PaxosPrepareReply::sealed.
  bool sealed = false;
  Disposition sealed_value = Disposition::kUnknown;
};

inline Bytes EncodePaxosAcceptReply(const PaxosAcceptReply& r) {
  Bytes out;
  PutFixed8(&out, r.accepted ? 1 : 0);
  PutFixed32(&out, r.promised);
  if (r.sealed) {
    PutFixed8(&out, 1);
    PutFixed8(&out, static_cast<uint8_t>(r.sealed_value));
  }
  return out;
}

inline bool DecodePaxosAcceptReply(const Slice& payload, PaxosAcceptReply* r) {
  Slice in = payload;
  uint8_t accepted;
  if (!GetFixed8(&in, &accepted) || !GetFixed32(&in, &r->promised)) {
    return false;
  }
  r->accepted = accepted != 0;
  r->sealed = false;
  r->sealed_value = Disposition::kUnknown;
  if (!in.empty()) {
    uint8_t sealed, sealed_value;
    if (!GetFixed8(&in, &sealed) || !GetFixed8(&in, &sealed_value) ||
        (sealed != 0 && sealed_value > 1)) {
      return false;
    }
    r->sealed = sealed != 0;
    if (r->sealed) r->sealed_value = static_cast<Disposition>(sealed_value);
  }
  return true;
}

/// kTmfPaxosVoteAck: an acceptor tells the home TMP which voters' votes it
/// has durably forced — bundled, so votes forced at the same instant cost
/// one message.
struct PaxosVoteAck {
  Transid transid;
  uint8_t acceptor_index = 0;  ///< k of $ACCEPT.<k>: the home's tally bit
  std::vector<uint16_t> voters;
};

inline Bytes EncodePaxosVoteAck(const PaxosVoteAck& a) {
  Bytes out;
  PutFixed64(&out, a.transid.Pack());
  PutFixed8(&out, a.acceptor_index);
  PutFixed8(&out, static_cast<uint8_t>(a.voters.size()));
  for (uint16_t v : a.voters) PutFixed16(&out, v);
  return out;
}

inline bool DecodePaxosVoteAck(const Slice& payload, PaxosVoteAck* a) {
  Slice in = payload;
  uint64_t packed;
  uint8_t n;
  if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &a->acceptor_index) ||
      !GetFixed8(&in, &n)) {
    return false;
  }
  a->transid = Transid::Unpack(packed);
  a->voters.clear();
  for (uint8_t i = 0; i < n; ++i) {
    uint16_t v;
    if (!GetFixed16(&in, &v)) return false;
    a->voters.push_back(v);
  }
  return true;
}

/// kTmfPaxosReclaim: the home garbage-collects decided instances once the
/// final disposition landed on every participant. Batched — one message
/// reclaims every transaction that drained since the last flush — and
/// deliberately sent without a transid stamp (it belongs to no single
/// transaction's message budget).
inline Bytes EncodePaxosReclaim(
    const std::vector<std::pair<uint64_t, Disposition>>& txns) {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(txns.size()));
  for (const auto& [packed, d] : txns) {
    PutFixed64(&out, packed);
    PutFixed8(&out, static_cast<uint8_t>(d));
  }
  return out;
}

inline bool DecodePaxosReclaim(
    const Slice& payload, std::vector<std::pair<uint64_t, Disposition>>* txns) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return false;
  if (static_cast<uint64_t>(n) * 9 > in.size()) return false;
  txns->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t packed;
    uint8_t d;
    if (!GetFixed64(&in, &packed) || !GetFixed8(&in, &d) || d > 1) {
      return false;
    }
    txns->emplace_back(packed, static_cast<Disposition>(d));
  }
  return true;
}

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_TMF_PROTOCOL_H_
