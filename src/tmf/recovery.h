// NodeRecoveryProcess: the operational ROLLFORWARD driver run on a freshly
// reloaded node, before its TMF services restart. It plans each volume's
// rollforward against the durable trails and local MAT, then *negotiates*
// the still-unknown ("ending at failure time") transactions with the
// surviving TMPs of the network as real protocol messages (kTmfResolveTxn
// with the recovering flag), and finally executes the rollforward and
// reports. This replaces the test-supplied resolve_remote lambda with the
// paper's actual negotiation: "ROLLFORWARD negotiates with other nodes of
// the network about transactions which were in 'ending' state at the time
// of the node failure."
//
// Negotiation rules (safety argued from MAT durability):
//   * a transaction whose home is THIS node and that has no durable MAT
//     completion record can never have committed (the forced home MAT
//     record IS the commit point) — presumed abort, recorded durably so
//     later queries from in-doubt children answer instantly;
//   * a transaction homed elsewhere is asked at its home TMP, retried with
//     capped exponential backoff until the home is reachable; with the
//     recovering flag the home always answers definitely (its MAT, or it
//     aborts the transaction — our volatile phase-1 promise died with the
//     node);
//   * under Paxos Commit (acceptor_nodes configured) an unreachable home no
//     longer blocks: any live acceptor majority reveals the decision, and
//     own-home unresolved transactions are sealed there (abort proposed at
//     a usurping ballot; any majority-accepted commit is adopted instead).

#ifndef ENCOMPASS_TMF_RECOVERY_H_
#define ENCOMPASS_TMF_RECOVERY_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit_trail.h"
#include "os/process.h"
#include "storage/volume.h"
#include "tmf/rollforward.h"

namespace encompass::tmf {

/// One volume to roll forward.
struct VolumeRecoveryTask {
  storage::Volume* volume = nullptr;
  /// Mutable: recovery raises the trail's undo floor once the volume is
  /// rebuilt (pre-rebuild images must never feed a later backout).
  audit::AuditTrail* trail = nullptr;
  const Bytes* archive = nullptr;
  uint64_t archive_lsn = 0;
};

struct NodeRecoveryConfig {
  std::vector<VolumeRecoveryTask> tasks;
  audit::MonitorAuditTrail* monitor_trail = nullptr;  ///< local durable MAT
  SimDuration resolve_timeout = Seconds(2);   ///< per negotiation attempt
  SimDuration retry_interval = Millis(500);   ///< base pacing between attempts
  /// Cap of the per-transid exponential backoff between attempts.
  SimDuration retry_backoff_cap = Seconds(8);
  /// Seed of the deterministic per-(transid, attempt) retry jitter.
  /// Deployments derive it from the simulation seed and node id, so the
  /// schedule de-synchronises across recovering nodes yet replays
  /// bit-identically for a given campaign seed.
  uint64_t jitter_seed = 1;
  /// Paxos Commit: when a home TMP is unreachable, learn the disposition
  /// from any live majority of these acceptors instead of waiting for the
  /// home to return. Empty (default) = negotiate with homes only (2PC).
  std::vector<net::NodeId> acceptor_nodes;
  std::string acceptor_process = "$ACCEPT";
  /// Fast path: resolution must settle per-voter instances (the home's
  /// first — it names the participants — then theirs) at the explicit
  /// endpoint placement instead of one decision instance.
  bool paxos_fast_path = false;
  std::vector<std::pair<net::NodeId, std::string>> acceptor_endpoints;
  /// Fired once with the per-volume reports when every volume is rebuilt.
  /// May tear down this process.
  std::function<void(const std::vector<RollforwardReport>&)> on_done;
};

/// Runs the recovery asynchronously in simulated time, then fires on_done.
class NodeRecoveryProcess : public os::Process {
 public:
  explicit NodeRecoveryProcess(NodeRecoveryConfig config)
      : config_(std::move(config)) {}

  std::string DebugName() const override { return "$RECOVER"; }

  bool done() const { return done_; }

  /// Exposes the backoff schedule for tests (determinism, growth, cap).
  SimDuration BackoffDelayForTest(const Transid& t, uint32_t attempts) const {
    return BackoffDelay(t, attempts);
  }

 protected:
  void OnAttach() override;
  void OnStart() override;

 private:
  struct PlannedVolume {
    VolumeRecoveryTask task;
    RollforwardPlan plan;
  };

  /// Per-transid negotiation state. Every pending transid negotiates
  /// concurrently — one unreachable home must not head-of-line block the
  /// transids that other (live) homes can answer immediately.
  struct Negotiation {
    uint32_t attempts = 0;       ///< completed unsuccessful attempts
    uint32_t paxos_attempt = 1;  ///< next recovery ballot attempt
    bool in_flight = false;
    /// Homed at this (recovering) node: under Paxos Commit its outcome must
    /// be sealed at the acceptors (presumed abort alone could contradict a
    /// majority-accepted commit the crash interrupted).
    bool own_home = false;
  };

  void NegotiateAll();
  void Negotiate(const Transid& t);
  /// Paxos Commit is configured in either placement form.
  bool PaxosAvailable() const {
    return !config_.acceptor_nodes.empty() ||
           !config_.acceptor_endpoints.empty();
  }
  void ResolvePaxos(const Transid& t);
  void Settle(const Transid& t, Disposition d);
  void RetryLater(const Transid& t);
  SimDuration BackoffDelay(const Transid& t, uint32_t attempts) const;
  void Finish();

  NodeRecoveryConfig config_;
  std::vector<PlannedVolume> planned_;
  std::map<Transid, Negotiation> pending_;    ///< awaiting a definite answer
  std::map<Transid, Disposition> negotiated_; ///< definite remote answers
  bool done_ = false;
  uint32_t reported_max_attempts_ = 0;
  sim::MetricId m_runs_, m_negotiations_, m_negotiation_retries_;
  sim::MetricId m_presumed_aborts_, m_max_retry_attempts_, m_paxos_resolves_;
};

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_RECOVERY_H_
