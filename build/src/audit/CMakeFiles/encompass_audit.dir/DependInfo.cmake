
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/audit_process.cc" "src/audit/CMakeFiles/encompass_audit.dir/audit_process.cc.o" "gcc" "src/audit/CMakeFiles/encompass_audit.dir/audit_process.cc.o.d"
  "/root/repo/src/audit/audit_record.cc" "src/audit/CMakeFiles/encompass_audit.dir/audit_record.cc.o" "gcc" "src/audit/CMakeFiles/encompass_audit.dir/audit_record.cc.o.d"
  "/root/repo/src/audit/audit_trail.cc" "src/audit/CMakeFiles/encompass_audit.dir/audit_trail.cc.o" "gcc" "src/audit/CMakeFiles/encompass_audit.dir/audit_trail.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/encompass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/encompass_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/encompass_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/encompass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encompass_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
